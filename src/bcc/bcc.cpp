#include "bcc/bcc.hpp"

#include <algorithm>

#include "exec/failpoint.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

// The DFS stack is templated over the adjacency backend: a frame holds a
// resumable row cursor (plain: span position, compact: decode state) so
// descending into a child and returning later never re-decodes the prefix
// of the parent's row.
template <class Cursor>
struct FrameT {
  NodeId node;
  NodeId parent;
  Cursor cursor;
  bool skipped_parent = false;
};

}  // namespace

NodeId BccResult::max_block_size() const {
  NodeId best = 0;
  for (const auto& b : blocks_)
    best = std::max(best, static_cast<NodeId>(b.size()));
  return best;
}

double BccResult::avg_block_size() const {
  if (blocks_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& b : blocks_) total += b.size();
  return static_cast<double>(total) / static_cast<double>(blocks_.size());
}

BccResult biconnected_components(const CsrGraph& g,
                                 std::span<const std::uint8_t> present) {
  BRICS_FAILPOINT("bcc.decompose");
  const NodeId n = g.num_nodes();
  BRICS_CHECK(present.empty() || present.size() == n);
  auto is_present = [&](NodeId v) { return present.empty() || present[v]; };

  BccResult res;
  res.is_cut_.assign(n, 0);

  std::vector<Dist> disc(n, kInfDist), low(n, kInfDist);
  std::vector<std::pair<NodeId, NodeId>> estack;
  std::vector<NodeId> stamp(n, kInvalidNode);  // last block id touching v
  Dist timer = 0;

  auto pop_block = [&](NodeId p, NodeId u) {
    const BlockId id = static_cast<BlockId>(res.blocks_.size());
    std::vector<NodeId> nodes;
    auto take = [&](NodeId v) {
      if (stamp[v] != id) {
        stamp[v] = id;
        nodes.push_back(v);
      }
    };
    while (true) {
      BRICS_CHECK(!estack.empty());
      auto [a, b] = estack.back();
      estack.pop_back();
      take(a);
      take(b);
      if (a == p && b == u) break;
    }
    res.blocks_.push_back(std::move(nodes));
  };

  // One backend dispatch for the whole decomposition; the DFS below is a
  // single template instantiation per storage mode.
  g.with_adjacency([&](const auto& adj) {
    using Frame = FrameT<std::decay_t<decltype(adj.cursor(0))>>;
    std::vector<Frame> fstack;

    for (NodeId root = 0; root < n; ++root) {
      if (!is_present(root) || disc[root] != kInfDist) continue;
      bool any_present = false;
      for (auto c = adj.cursor(root); !c.done(); c.advance()) {
        if (is_present(c.target())) {
          any_present = true;
          break;
        }
      }
      if (!any_present) {
        // Isolated present node: singleton block.
        disc[root] = timer++;
        res.blocks_.push_back({root});
        continue;
      }

      disc[root] = low[root] = timer++;
      fstack.push_back({root, kInvalidNode, adj.cursor(root), false});
      while (!fstack.empty()) {
        Frame& f = fstack.back();
        const NodeId u = f.node;
        bool descended = false;
        while (!f.cursor.done()) {
          const NodeId w = f.cursor.target();
          f.cursor.advance();
          if (!is_present(w)) continue;
          if (w == f.parent && !f.skipped_parent) {
            // The input graph is simple, so exactly one edge leads back to
            // the DFS parent; skip it once.
            f.skipped_parent = true;
            continue;
          }
          if (disc[w] == kInfDist) {
            estack.push_back({u, w});
            disc[w] = low[w] = timer++;
            fstack.push_back({w, u, adj.cursor(w), false});
            descended = true;
            break;
          }
          if (disc[w] < disc[u]) {
            estack.push_back({u, w});
            low[u] = std::min(low[u], disc[w]);
          }
        }
        if (descended) continue;

        // u exhausted: fold into parent. (Copy the parent out before the
        // pop invalidates the frame reference.)
        const NodeId p = f.parent;
        fstack.pop_back();
        if (p == kInvalidNode) break;  // root finished
        low[p] = std::min(low[p], low[u]);
        if (low[u] >= disc[p]) pop_block(p, u);
      }
      BRICS_CHECK_MSG(estack.empty(), "edge stack not drained at root "
                                          << root);
    }
  });

  // Memberships: (node, block) pairs -> CSR. A node is an articulation
  // point exactly when it belongs to more than one block.
  std::vector<std::pair<NodeId, BlockId>> pairs;
  for (BlockId b = 0; b < res.blocks_.size(); ++b)
    for (NodeId v : res.blocks_[b]) pairs.emplace_back(v, b);
  std::sort(pairs.begin(), pairs.end());
  res.member_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto& [v, b] : pairs) ++res.member_offsets_[v + 1];
  for (NodeId v = 0; v < n; ++v)
    res.member_offsets_[v + 1] += res.member_offsets_[v];
  res.memberships_.resize(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    res.memberships_[i] = pairs[i].second;
  for (NodeId v = 0; v < n; ++v) {
    const auto cnt = res.member_offsets_[v + 1] - res.member_offsets_[v];
    if (cnt > 1) {
      res.is_cut_[v] = 1;
      ++res.num_cuts_;
    }
    BRICS_CHECK_MSG(cnt >= 1 || !is_present(v),
                    "present node " << v << " in no block");
  }
  BRICS_COUNTER(c_blocks, "bcc.blocks");
  BRICS_COUNTER(c_cuts, "bcc.cut_vertices");
  BRICS_HISTOGRAM(h_size, "bcc.block_size", pow2_bounds());
  BRICS_METRICS_ONLY(c_blocks.add(res.num_blocks());
                     c_cuts.add(res.num_cut_vertices());
                     for (BlockId b = 0; b < res.num_blocks(); ++b)
                         h_size.observe(res.block_nodes(b).size());)
  return res;
}

BccRaw BccResult::to_raw() const {
  BccRaw raw;
  raw.blocks = blocks_;
  raw.is_cut = is_cut_;
  raw.member_offsets = member_offsets_;
  raw.memberships = memberships_;
  raw.num_cuts = num_cuts_;
  return raw;
}

BccResult BccResult::from_raw(BccRaw raw) {
  BccResult res;
  res.blocks_ = std::move(raw.blocks);
  res.is_cut_ = std::move(raw.is_cut);
  res.member_offsets_ = std::move(raw.member_offsets);
  res.memberships_ = std::move(raw.memberships);
  res.num_cuts_ = raw.num_cuts;
  return res;
}

}  // namespace brics
