#include "bcc/bct.hpp"

#include <algorithm>

#include "exec/failpoint.hpp"
#include "util/check.hpp"

namespace brics {

BlockCutTree build_bct(const BccResult& bcc, NodeId n) {
  BRICS_FAILPOINT("bcc.bct");
  BlockCutTree t;
  const BlockId nb = bcc.num_blocks();
  t.cut_of_node.assign(n, kInvalidCut);
  for (NodeId v = 0; v < n; ++v) {
    if (bcc.is_cut(v)) {
      t.cut_of_node[v] = static_cast<CutId>(t.cut_nodes.size());
      t.cut_nodes.push_back(v);
    }
  }
  t.block_cuts.assign(nb, {});
  t.cut_blocks.assign(t.cut_nodes.size(), {});
  for (BlockId b = 0; b < nb; ++b) {
    for (NodeId v : bcc.block_nodes(b)) {
      const CutId c = t.cut_of_node[v];
      if (c != kInvalidCut) {
        t.block_cuts[b].push_back(c);
        t.cut_blocks[c].push_back(b);
      }
    }
  }

  // Root each BCT component at its largest block; BFS assigns parents and a
  // top-down order over blocks.
  t.parent_cut.assign(nb, kInvalidCut);
  t.parent_block.assign(t.cut_nodes.size(), kInvalidBlock);
  std::vector<std::uint8_t> block_seen(nb, 0), cut_seen(t.cut_nodes.size(), 0);
  t.top_down.reserve(nb);

  std::vector<BlockId> order(nb);
  for (BlockId b = 0; b < nb; ++b) order[b] = b;
  std::sort(order.begin(), order.end(), [&](BlockId a, BlockId b) {
    return bcc.block_nodes(a).size() > bcc.block_nodes(b).size();
  });

  std::vector<BlockId> queue;
  for (BlockId root : order) {
    if (block_seen[root]) continue;
    block_seen[root] = 1;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const BlockId b = queue[head];
      t.top_down.push_back(b);
      for (CutId c : t.block_cuts[b]) {
        if (cut_seen[c]) continue;
        cut_seen[c] = 1;
        t.parent_block[c] = b;
        for (BlockId b2 : t.cut_blocks[c]) {
          if (block_seen[b2]) continue;
          block_seen[b2] = 1;
          t.parent_cut[b2] = c;
          queue.push_back(b2);
        }
      }
    }
  }
  BRICS_CHECK(t.top_down.size() == nb);

  // Tree invariant: #BCT edges = #(block, cut) incidences; a tree/forest
  // over (blocks + cuts) nodes must satisfy edges = nodes - components.
  std::uint64_t incidences = 0;
  for (const auto& cs : t.block_cuts) incidences += cs.size();
  std::uint64_t roots = 0;
  for (BlockId b = 0; b < nb; ++b)
    if (t.parent_cut[b] == kInvalidCut) ++roots;
  BRICS_CHECK_MSG(
      incidences + roots == static_cast<std::uint64_t>(nb) + t.cut_nodes.size(),
      "block-cut structure is not a forest");
  return t;
}

}  // namespace brics
