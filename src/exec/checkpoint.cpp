#include "exec/checkpoint.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace brics {
namespace {

constexpr char kMagic[8] = {'B', 'R', 'I', 'C', 'S', 'C', 'K', '1'};
constexpr std::size_t kHeaderSize = 32;  // magic..payload_size
constexpr std::size_t kTrailerSize = 4;  // crc

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void write_segment(const std::string& dir, const std::string& name,
                   SegmentKind kind, std::uint64_t config_hash,
                   std::string_view payload) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw CheckpointError("cannot create checkpoint directory '" + dir +
                          "': " + ec.message());

  std::string blob;
  blob.reserve(kHeaderSize + payload.size() + kTrailerSize);
  blob.append(kMagic, sizeof kMagic);
  put_u32(blob, kCheckpointFormatVersion);
  put_u32(blob, static_cast<std::uint32_t>(kind));
  put_u64(blob, config_hash);
  put_u64(blob, payload.size());
  blob.append(payload.data(), payload.size());
  put_u32(blob, crc32(blob.data(), blob.size()));

  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.good())
      throw CheckpointError("cannot open '" + tmp_path + "' for writing");
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out.good())
      throw CheckpointError("short write to '" + tmp_path + "'");
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec)
    throw CheckpointError("cannot rename '" + tmp_path + "' into place: " +
                          ec.message());
}

std::size_t sweep_orphan_tmp_segments(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() != ".tmp") continue;
    if (std::filesystem::remove(p, ec)) ++removed;
  }
  return removed;
}

std::string read_segment(const std::string& path, SegmentKind kind,
                         std::uint64_t config_hash) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw CheckpointError("cannot open checkpoint segment '" + path + "'");
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < kHeaderSize + kTrailerSize)
    throw CheckpointError("truncated checkpoint segment '" + path + "' (" +
                          std::to_string(blob.size()) + " bytes)");
  if (std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0)
    throw CheckpointError("bad magic in checkpoint segment '" + path + "'");
  const std::uint32_t version = get_u32(blob.data() + 8);
  if (version != kCheckpointFormatVersion)
    throw CheckpointError(
        "checkpoint format version mismatch in '" + path + "': got " +
        std::to_string(version) + ", want " +
        std::to_string(kCheckpointFormatVersion));
  const std::uint32_t got_kind = get_u32(blob.data() + 12);
  if (got_kind != static_cast<std::uint32_t>(kind))
    throw CheckpointError("checkpoint segment '" + path +
                          "' holds kind " + std::to_string(got_kind) +
                          ", want " +
                          std::to_string(static_cast<std::uint32_t>(kind)));
  const std::uint64_t got_hash = get_u64(blob.data() + 16);
  if (got_hash != config_hash)
    throw CheckpointError("checkpoint segment '" + path +
                          "' was written for a different graph/config");
  const std::uint64_t payload_size = get_u64(blob.data() + 24);
  if (blob.size() != kHeaderSize + payload_size + kTrailerSize)
    throw CheckpointError("truncated checkpoint segment '" + path +
                          "': header claims " + std::to_string(payload_size) +
                          " payload bytes");
  const std::uint32_t want_crc =
      get_u32(blob.data() + kHeaderSize + payload_size);
  const std::uint32_t got_crc =
      crc32(blob.data(), kHeaderSize + payload_size);
  if (want_crc != got_crc)
    throw CheckpointError("CRC mismatch in checkpoint segment '" + path +
                          "'");
  return blob.substr(kHeaderSize, payload_size);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteReader::need(std::size_t len) const {
  if (data_.size() - pos_ < len)
    throw CheckpointError("truncated checkpoint payload: want " +
                          std::to_string(len) + " bytes at offset " +
                          std::to_string(pos_) + ", have " +
                          std::to_string(data_.size() - pos_));
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void ByteReader::bytes(void* out, std::size_t len) {
  need(len);
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
}

}  // namespace brics
