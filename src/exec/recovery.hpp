// Checkpoint/resume manager: persists the pipeline's typed artifacts
// (pipeline/artifacts.hpp) as CRC-validated segment files
// (exec/checkpoint.hpp) so a run killed at any phase can continue from the
// last completed stage — and, mid-Traverse, from the last completed wave
// of traversal tasks — instead of recomputing the world.
//
// Layout of a checkpoint directory:
//
//   reduced.ckpt        ReducedGraph   (reduce/serialize.hpp payload)
//   decomposition.ckpt  Decomposition  (BCC + BCT + ownership + blocks)
//   plan.ckpt           SamplePlan
//   traversal.ckpt      TraversalResults, possibly partial: per-block
//                       completion flags say which sources already folded
//   manifest.ckpt       attempt count + cumulative wall clock
//
// Every segment embeds a config hash fingerprinting the input graph and
// the estimator options; --resume against a different graph or config
// rejects the segments and recomputes. All traversal accumulators are
// integers, so a resumed run at 100% sampling reproduces the uninterrupted
// result bit-exactly (tests/test_recovery.cpp holds that bar).
//
// Failure policy: a load that fails for any reason (missing file, bad CRC,
// version or config mismatch, malformed payload) counts a rejection and
// returns false — the stage recomputes. A save that fails counts a
// failure and the run continues without that snapshot. The manager never
// throws into the pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "exec/checkpoint.hpp"
#include "exec/resilience.hpp"
#include "pipeline/artifacts.hpp"
#include "util/timer.hpp"

namespace brics {

/// Fingerprint of (graph, estimator options): adjacency structure and
/// weights plus every option that changes pipeline artifacts. Budget and
/// recovery knobs are deliberately excluded — a resumed run may have a
/// different timeout.
std::uint64_t recovery_config_hash(const CsrGraph& g,
                                   const EstimateOptions& opts);

class Recovery {
 public:
  /// Binds to `opts.checkpoint_dir` (created on demand). A fresh run
  /// (resume == false) clears stale segments; a resume reads the manifest
  /// to continue the attempt count and cumulative wall clock.
  Recovery(const RecoveryOptions& opts, std::uint64_t config_hash);

  bool resuming() const { return opts_.resume; }
  std::uint32_t checkpoint_every() const { return opts_.checkpoint_every; }

  // Stage artifacts: load_* yields a value only when a valid segment was
  // consumed; save_* persists a stage-complete (or, for traversal,
  // wave-complete) artifact.
  std::optional<ReducedGraph> load_reduced();
  void save_reduced(const ReducedGraph& rg);
  bool load_decomposition(Decomposition& dec, const ReducedGraph& rg);
  void save_decomposition(const Decomposition& dec);
  bool load_plan(SamplePlan& plan, const Decomposition& dec);
  void save_plan(const SamplePlan& plan);
  bool load_traversal(TraversalResults& trav, const Decomposition& dec,
                      const SamplePlan& plan);
  void save_traversal(const TraversalResults& trav);

  /// Generic segment surface for measure-specific artifacts (e.g. the
  /// betweenness traversal accumulators in src/measures/). The caller owns
  /// encode/decode and any shape validation against its own inputs; the
  /// manager owns framing, config-hash gating, the rejection/save-failure
  /// accounting, and the never-throw-into-the-pipeline policy. `name` is a
  /// file name inside the checkpoint directory; fresh runs clear it along
  /// with the stage segments (kKnownSegmentFiles).
  bool load_segment(const char* name, SegmentKind kind,
                    std::string& payload);
  void save_segment(const char* name, SegmentKind kind,
                    std::string_view payload);

  /// Wall clock across attempts: prior attempts' manifest value plus this
  /// attempt so far.
  double cumulative_wall_s() const {
    return prior_wall_s_ + timer_.seconds();
  }

  /// Fold the manager's accounting into `out` (retry/quarantine fields are
  /// owned by the pipeline context and left untouched) and persist the
  /// final manifest.
  void finalize(RecoveryStats& out);

 private:
  std::string path(const char* name) const {
    return opts_.checkpoint_dir + "/" + name;
  }
  void write_manifest();

  RecoveryOptions opts_;
  std::uint64_t hash_;
  RecoveryStats stats_;
  std::uint32_t prior_attempts_ = 0;
  double prior_wall_s_ = 0.0;
  Timer timer_;
};

}  // namespace brics
