// Resilience knobs and accounting shared by the retry and checkpoint
// machinery (docs/ROBUSTNESS.md).
//
// RetryPolicy governs the Traverse stage's per-task fault handling: a task
// that throws is retried with jittered exponential backoff; a task that
// keeps failing is quarantined — its optional sources enter the PR-1
// degraded-result accounting, and lost *mandatory* work escalates to the
// plain-sampling fallback (quarantine may never silently break the exact
// cross-block machinery).
//
// RecoveryOptions selects checkpointing: with a checkpoint_dir every stage
// boundary persists its artifact as a CRC-validated segment file
// (exec/checkpoint.hpp), and resume=true consumes those segments so a
// crashed run continues from the last completed stage/block.
//
// RecoveryStats is the run report's schema-v3 "recovery" section: it is
// always present on an EstimateResult (zeroed when the machinery is idle).
#pragma once

#include <cstdint>
#include <string>

namespace brics {

/// Bounded retry for faulted traversal tasks.
struct RetryPolicy {
  int max_attempts = 3;          ///< total tries per task (>= 1)
  std::uint32_t backoff_ms = 1;  ///< base backoff; doubles per retry, jittered
};

/// Checkpoint/resume configuration.
struct RecoveryOptions {
  std::string checkpoint_dir;  ///< empty = checkpointing disabled
  bool resume = false;         ///< consume existing segments before computing
  /// Traverse tasks between mid-stage snapshots; 0 = stage end only.
  std::uint32_t checkpoint_every = 0;
};

/// Accounting for one run's resilience machinery.
struct RecoveryStats {
  std::uint32_t checkpoints_written = 0;   ///< segments persisted
  std::uint32_t checkpoints_loaded = 0;    ///< segments consumed on resume
  std::uint32_t checkpoints_rejected = 0;  ///< corrupt/mismatched, recomputed
  std::uint32_t checkpoint_save_failures = 0;  ///< writes that failed (run on)
  std::uint32_t retries = 0;            ///< traversal task re-attempts
  std::uint32_t quarantined_blocks = 0; ///< blocks whose task kept failing
  std::uint32_t attempt = 1;       ///< 1 = fresh run, N = (N-1)-th resume
  bool resumed = false;            ///< at least one segment was consumed
  /// Wall-clock summed over this attempt and every prior one recorded in
  /// the checkpoint manifest (equals times.total_s for a fresh run).
  double cumulative_wall_s = 0.0;
};

}  // namespace brics
