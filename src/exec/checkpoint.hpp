// Checkpoint segment files: the on-disk substrate of crash recovery
// (docs/ROBUSTNESS.md).
//
// One segment holds one serialized pipeline artifact. The framing is
// deliberately dumb — fixed little-endian fields, no compression, one CRC:
//
//   offset  size  field
//   0       8     magic "BRICSCK1"
//   8       4     format version (kCheckpointFormatVersion)
//   12      4     segment kind (SegmentKind)
//   16      8     config hash (graph + estimator options fingerprint)
//   24      8     payload size in bytes
//   32      n     payload
//   32+n    4     CRC-32 (IEEE, reflected) over bytes [0, 32+n)
//
// Writes go to "<name>.tmp" in the same directory and are renamed into
// place, so a crash mid-write leaves either the old segment or none —
// never a torn file with a valid header. Readers validate magic, version,
// kind, config hash, size and CRC and throw CheckpointError (an
// InputError, CLI exit 3) on any mismatch; the recovery layer treats that
// as "no checkpoint" and recomputes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "exec/errors.hpp"

namespace brics {

/// A segment file failed validation (truncated, bit-flipped, wrong
/// version, or from a different graph/config). InputError taxonomy: the
/// caller's checkpoint directory is at fault, not the library.
class CheckpointError : public InputError {
 public:
  explicit CheckpointError(const std::string& what) : InputError(what) {}
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `len` bytes.
/// Chainable: pass a previous result as `seed` to extend.
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);

/// Which artifact a segment holds (part of the validated header).
enum class SegmentKind : std::uint32_t {
  kReduced = 1,
  kDecomposition = 2,
  kPlan = 3,
  kTraversal = 4,
  kManifest = 5,
  kGraphState = 6,    ///< server: committed graph version + edge list
  kBcTraversal = 7,   ///< measures: partial betweenness accumulators
};

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Atomically write segment `dir`/`name` (directory created on demand).
/// Throws CheckpointError when the filesystem refuses.
void write_segment(const std::string& dir, const std::string& name,
                   SegmentKind kind, std::uint64_t config_hash,
                   std::string_view payload);

/// Read and fully validate a segment; returns the payload. Throws
/// CheckpointError on any framing, CRC, version, kind or config mismatch.
std::string read_segment(const std::string& path, SegmentKind kind,
                         std::uint64_t config_hash);

/// Delete orphaned "*.tmp" segments a killed writer left in `dir` and
/// return how many were removed. A crash between open and rename leaves
/// the temporary next to the (still valid) previous segment; nothing ever
/// reads those, so every checkpoint consumer sweeps them at startup
/// instead of letting them accumulate forever. Missing or unreadable
/// directories are a no-op.
std::size_t sweep_orphan_tmp_segments(const std::string& dir);

/// Append-only little-endian byte buffer for artifact payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void f64(double v);
  void bytes(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a payload; every underflow
/// throws CheckpointError("truncated ...") instead of reading garbage.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  void bytes(void* out, std::size_t len);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t len) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace brics
