// Typed error taxonomy (see docs/ROBUSTNESS.md).
//
// Three classes of failure leave the library, each with a distinct type so
// callers (the CLI in particular) can map them to distinct responses:
//
//   CheckFailure   (util/check.hpp) — a violated internal invariant; a bug.
//   InputError     — malformed or adversarial input data; the caller's data
//                    is at fault, the library state is untouched.
//   BudgetExceeded — a RunBudget expired at a point where no degraded
//                    result can be built from work done so far; callers
//                    holding the raw graph catch it and fall back to plain
//                    sampling.
//   FailPointError — an armed fail point fired (test-only fault injection).
#pragma once

#include <stdexcept>
#include <string>

#include "exec/budget.hpp"

namespace brics {

/// Malformed or adversarial input (edge lists, METIS files, serialized
/// reductions). Maps to CLI exit code 3.
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

/// A RunBudget expired where no partial result exists (e.g. mid-reduction
/// or mid-decomposition). Carries the phase that was executing.
class BudgetExceeded : public std::runtime_error {
 public:
  explicit BudgetExceeded(ExecPhase phase)
      : std::runtime_error(std::string("run budget exceeded during ") +
                           to_string(phase) + " phase"),
        phase_(phase) {}

  ExecPhase phase() const { return phase_; }

 private:
  ExecPhase phase_;
};

/// Thrown by BRICS_FAILPOINT when its site is armed (exec/failpoint.hpp).
class FailPointError : public std::runtime_error {
 public:
  explicit FailPointError(const std::string& name)
      : std::runtime_error("fail point '" + name + "' fired") {}
};

/// The Traverse stage lost work its exactness guarantees depend on: a
/// persistently-failing task took mandatory sources into quarantine, or a
/// fault escaped mid-fold and poisoned the accumulators. No valid result
/// can be built from the partial traversal, so the stage throws this and
/// estimate_brics falls back to plain sampling on the raw graph
/// (docs/ROBUSTNESS.md). Quarantine of optional-only work does NOT throw —
/// it lands in the standard degraded accounting instead.
class QuarantineError : public std::runtime_error {
 public:
  explicit QuarantineError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace brics
