// Deterministic fail-point registry for fault-injection testing.
//
// A fail point is a named site compiled into the library:
//
//   BRICS_FAILPOINT("reduce.pipeline");
//
// Unarmed sites cost one relaxed atomic load (the registry keeps a global
// armed-count; the name lookup only happens when at least one point is
// armed). Tests arm a site — optionally with a countdown so the Nth hit
// fires, a fire limit so it disarms after firing, and an action — and the
// site throws FailPointError (or raises SIGKILL for crash-recovery tests),
// letting tests prove that the pipeline degrades or surfaces a typed
// error, never crashes, under induced faults anywhere in the pipeline.
//
// Sites can also be armed from the environment:
//
//   BRICS_FAILPOINTS="traverse.task=5,reduce.pipeline:once" brics ...
//
// (grammar in arm_from_spec; malformed specs throw InputError so the CLI
// exits 3 instead of silently ignoring them).
//
// The whole mechanism compiles to no-ops with -DBRICS_FAILPOINTS=OFF
// (production/release builds); see the top-level CMakeLists.
#pragma once

#include <span>
#include <string>

#include "exec/errors.hpp"

#ifndef BRICS_FAILPOINTS_ENABLED
#define BRICS_FAILPOINTS_ENABLED 1
#endif

namespace brics {

/// What an armed site does when it fires.
enum class FailAction : std::uint8_t {
  kThrow,  ///< throw FailPointError (default)
  kKill,   ///< raise(SIGKILL): an un-catchable crash, for resume tests
};

/// Process-wide registry of armed fail points. Thread-safe; arming is
/// test-only so the armed path may take a lock.
class FailPointRegistry {
 public:
  static FailPointRegistry& instance();

  /// Arm `name`: the site triggers on its (skip_hits + 1)-th evaluation.
  /// fire_limit bounds how many evaluations trigger after that (the site
  /// disarms itself when the limit is spent); -1 = every later hit.
  void arm(const std::string& name, int skip_hits = 0, int fire_limit = -1,
           FailAction action = FailAction::kThrow);

  void disarm(const std::string& name);
  void disarm_all();

  /// True while `name` is armed (a spent fire limit disarms it, so tests
  /// and the chaos driver can tell "fired" from "site never evaluated").
  bool armed(const std::string& name) const;

  /// True when `name` is armed and its countdown has reached zero
  /// (decrements the countdown otherwise). Fast path when nothing is
  /// armed: a single relaxed atomic load. A kKill site raises SIGKILL
  /// here and never returns.
  bool should_fail(const char* name);

  /// Arm sites from a spec string. Grammar (entries split on ',' or ';'):
  ///
  ///   entry   := name [ '=' N ] { ':' modifier }
  ///   modifier:= 'once' | 'kill'
  ///
  /// `name=N` triggers on the Nth evaluation (N >= 1); ':once' disarms
  /// after one firing; ':kill' raises SIGKILL instead of throwing.
  /// Unknown site names, bad counts and empty entries throw InputError —
  /// a malformed injection spec must never be silently ignored.
  void arm_from_spec(const std::string& spec);

  /// arm_from_spec(getenv("BRICS_FAILPOINTS")); no-op when unset/empty.
  void arm_from_env();

 private:
  FailPointRegistry() = default;
  struct Impl;
  Impl& impl();
  const Impl& impl() const;
};

/// Every fail-point site compiled into the library, for exhaustive
/// enumeration by the chaos driver (tools/brics_chaos).
std::span<const char* const> known_fail_points();

/// RAII arm/disarm for tests.
class ScopedFailPoint {
 public:
  explicit ScopedFailPoint(std::string name, int skip_hits = 0,
                           int fire_limit = -1,
                           FailAction action = FailAction::kThrow)
      : name_(std::move(name)) {
    FailPointRegistry::instance().arm(name_, skip_hits, fire_limit, action);
  }
  ~ScopedFailPoint() { FailPointRegistry::instance().disarm(name_); }

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string name_;
};

}  // namespace brics

#if BRICS_FAILPOINTS_ENABLED
#define BRICS_FAILPOINT(name)                                       \
  do {                                                              \
    if (::brics::FailPointRegistry::instance().should_fail(name))   \
      throw ::brics::FailPointError(name);                          \
  } while (0)
#else
#define BRICS_FAILPOINT(name) \
  do {                        \
  } while (0)
#endif
