// Deterministic fail-point registry for fault-injection testing.
//
// A fail point is a named site compiled into the library:
//
//   BRICS_FAILPOINT("reduce.pipeline");
//
// Unarmed sites cost one relaxed atomic load (the registry keeps a global
// armed-count; the name lookup only happens when at least one point is
// armed). Tests arm a site — optionally with a countdown so the Nth hit
// fires — and the site throws FailPointError, letting tests prove that the
// pipeline degrades or surfaces a typed error, never crashes, under induced
// faults in graph I/O, reduction, and BCC construction.
//
// The whole mechanism compiles to no-ops with -DBRICS_FAILPOINTS=OFF
// (production/release builds); see the top-level CMakeLists.
#pragma once

#include <string>

#include "exec/errors.hpp"

#ifndef BRICS_FAILPOINTS_ENABLED
#define BRICS_FAILPOINTS_ENABLED 1
#endif

namespace brics {

/// Process-wide registry of armed fail points. Thread-safe; arming is
/// test-only so the armed path may take a lock.
class FailPointRegistry {
 public:
  static FailPointRegistry& instance();

  /// Arm `name`; the site throws on its (skip_hits + 1)-th hit.
  void arm(const std::string& name, int skip_hits = 0);

  void disarm(const std::string& name);
  void disarm_all();

  /// True when `name` is armed and its countdown has reached zero
  /// (decrements the countdown otherwise). Fast path when nothing is
  /// armed: a single relaxed atomic load.
  bool should_fail(const char* name);

 private:
  FailPointRegistry() = default;
  struct Impl;
  Impl& impl();
};

/// RAII arm/disarm for tests.
class ScopedFailPoint {
 public:
  explicit ScopedFailPoint(std::string name, int skip_hits = 0)
      : name_(std::move(name)) {
    FailPointRegistry::instance().arm(name_, skip_hits);
  }
  ~ScopedFailPoint() { FailPointRegistry::instance().disarm(name_); }

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string name_;
};

}  // namespace brics

#if BRICS_FAILPOINTS_ENABLED
#define BRICS_FAILPOINT(name)                                       \
  do {                                                              \
    if (::brics::FailPointRegistry::instance().should_fail(name))   \
      throw ::brics::FailPointError(name);                          \
  } while (0)
#else
#define BRICS_FAILPOINT(name) \
  do {                        \
  } while (0)
#endif
