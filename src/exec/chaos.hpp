// Exhaustive fault-injection sweep over every compiled fail-point site.
//
// The chaos harness (driven by tools/brics_chaos) is the executable form of
// the robustness contract in docs/ROBUSTNESS.md: for EVERY registered fail
// point, triggered on its 1st..max_hits-th evaluation, an estimator run
// must end in exactly one of
//
//   absorbed   the retry layer ate the fault; the result is not degraded
//   degraded   a valid coarser estimate with the degradation flags set
//   error      a typed taxonomy error (InputError / FailPointError)
//   not-hit    the armed site was never evaluated on this configuration
//
// and NEVER in a crash, a CheckFailure, an untyped exception, or a result
// with non-finite / wrong-shaped farness values. On top of that, every case
// whose injection actually fired must be recoverable: a follow-up
// --resume run against the case's checkpoint directory has to reproduce
// the uninjected baseline bit-for-bit (the sweep runs at 100 % sampling,
// where farness is exact and integer-valued end to end).
//
// The sweep also exercises the graph I/O sites by round-tripping the input
// through an edge-list and a METIS file in the work directory each case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

struct ChaosOptions {
  /// Which centrality the sweep drives. Betweenness runs the same site
  /// enumeration through estimate_betweenness — including the kBcTraversal
  /// checkpoint segment — with the identical bit-exact resume contract
  /// (the Q64.64 accumulation is deterministic at any rate).
  Measure measure = Measure::kFarness;
  double sample_rate = 1.0;  ///< 1.0 => resume checks compare bit-exactly
  std::uint64_t seed = 1;
  int max_hits = 2;          ///< trigger each site on hits 1..max_hits
  bool verify_resume = true; ///< fired cases must resume to the baseline
  std::string work_dir = "chaos-work";  ///< graphs + checkpoint dirs
};

struct ChaosCase {
  std::string site;
  int hit = 1;            ///< which evaluation of the site triggered
  std::string outcome;    ///< absorbed | degraded | error:* | not-hit | FAIL: ...
  bool fired = false;     ///< the armed injection actually triggered
  bool resume_checked = false;
  bool failed = false;
};

struct ChaosReport {
  std::vector<ChaosCase> cases;
  int failures = 0;

  /// Human-readable per-outcome tally plus every failing case.
  std::string summary() const;
};

/// Run the full sweep on a connected graph. Arms and disarms the global
/// FailPointRegistry internally; leaves it disarmed. Creates work_dir.
ChaosReport run_chaos_sweep(const CsrGraph& g, const ChaosOptions& copts);

}  // namespace brics
