// Deadline-aware execution control.
//
// A RunBudget is a declarative resource limit attached to one estimator
// run: a wall-clock deadline and/or a cap on traversal sources. The
// estimators translate it into a CancelToken shared with every traversal
// thread; cancellation is cooperative and checked at frontier granularity
// (every ~1k node expansions), so it is OpenMP-safe and costs one relaxed
// atomic load on the hot path.
//
// Budget semantics (see docs/ROBUSTNESS.md):
//   - Mandatory work — cut-vertex traversals and the first source of every
//     block — always runs to completion, so the exact cross-block skeleton
//     of a BRICS estimate is never truncated. Only optional sample sources
//     are shed when the deadline fires.
//   - When a budget cuts a run, estimators degrade instead of abort: the
//     result is rescaled to the achieved sample count and flagged via
//     EstimateResult::degraded / cut_phase / achieved_sample_rate.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace brics {

/// Pipeline phase identifiers, used to report where a budget cut or an
/// induced fault forced a degraded result.
enum class ExecPhase : std::uint8_t {
  kNone,      ///< nothing was cut
  kPlan,      ///< the max-sources cap bound the sampling plan
  kReduce,    ///< reduction blew the budget or faulted
  kBcc,       ///< decomposition / BCT blew the budget or faulted
  kTraverse,  ///< the deadline fired during sampled traversals
};

inline const char* to_string(ExecPhase p) {
  switch (p) {
    case ExecPhase::kNone: return "none";
    case ExecPhase::kPlan: return "plan";
    case ExecPhase::kReduce: return "reduce";
    case ExecPhase::kBcc: return "bcc";
    case ExecPhase::kTraverse: return "traverse";
  }
  return "?";
}

/// Declarative limits for one estimator run. Zero means unlimited; the
/// default budget never degrades anything.
struct RunBudget {
  std::int64_t timeout_ms = 0;  ///< wall-clock budget; 0 = none
  std::uint32_t max_sources = 0;  ///< cap on traversal sources; 0 = none

  bool unlimited() const { return timeout_ms <= 0 && max_sources == 0; }
};

/// Cooperative cancellation flag shared between an estimator driver and its
/// traversal threads. cancelled() is a relaxed atomic load — cheap enough
/// for hot loops; poll() additionally checks the wall-clock deadline and is
/// called at frontier granularity. Not copyable (threads share a reference).
class CancelToken {
 public:
  CancelToken() = default;

  /// A token that self-cancels once timeout_ms of wall-clock time elapse
  /// (checked on poll()). timeout_ms <= 0 means no deadline.
  explicit CancelToken(std::int64_t timeout_ms) {
    if (timeout_ms > 0) {
      has_deadline_ = true;
      deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() const noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Check the deadline (if any) and return the updated cancelled state.
  /// Const so traversals can poll through a const pointer; the flag is
  /// logically a communication channel, not object state.
  bool poll() const noexcept {
    if (cancelled()) return true;
    if (has_deadline_ && Clock::now() >= deadline_) cancel();
    return cancelled();
  }

 private:
  using Clock = std::chrono::steady_clock;
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace brics
