#include "exec/chaos.hpp"

#include <cmath>
#include <filesystem>
#include <map>
#include <sstream>

#include "core/brics.hpp"
#include "core/estimate.hpp"
#include "exec/errors.hpp"
#include "measures/betweenness.hpp"
#include "exec/failpoint.hpp"
#include "graph/graph_io.hpp"
#include "graph/metis_io.hpp"
#include "util/check.hpp"

namespace brics {
namespace {

namespace fs = std::filesystem;

void fail_case(ChaosCase& c, const std::string& why) {
  c.failed = true;
  c.outcome = "FAIL: " + why;
}

/// A structurally valid estimate: right shapes, finite non-negative values.
bool valid_result(const EstimateResult& res, NodeId n) {
  if (res.farness.size() != n || res.exact.size() != n) return false;
  for (double f : res.farness)
    if (!std::isfinite(f) || f < 0.0) return false;
  return true;
}

}  // namespace

ChaosReport run_chaos_sweep(const CsrGraph& g, const ChaosOptions& copts) {
  BRICS_CHECK_MSG(copts.max_hits >= 1, "chaos max_hits must be >= 1");
  FailPointRegistry& reg = FailPointRegistry::instance();
  reg.disarm_all();

  fs::create_directories(copts.work_dir);
  const std::string edge_path = copts.work_dir + "/graph.txt";
  const std::string metis_path = copts.work_dir + "/graph.metis";
  const std::string primed_dir = copts.work_dir + "/primed";
  const std::string ckdir = copts.work_dir + "/ck";

  // Round-trip the input through both on-disk formats once; every case
  // re-reads them so the io.* sites sit on the sweep's hot path. All runs
  // use the re-read graph — the edge-list loader renumbers nodes in
  // first-appearance order, so comparing against an estimate on `g`
  // directly would compare permuted vectors.
  write_edge_list_file(g, edge_path);
  write_metis_file(g, metis_path);
  const CsrGraph canonical = read_edge_list_file(edge_path);

  EstimateOptions base;
  base.measure = copts.measure;
  base.sample_rate = copts.sample_rate;
  base.seed = copts.seed;

  const EstimateResult baseline = estimate_centrality(canonical, base);
  BRICS_CHECK_MSG(!baseline.degraded, "chaos baseline run degraded");

  // A complete checkpoint directory, for the cases that can only evaluate
  // their site on the load path (recovery.load needs segments to load).
  std::error_code ec;
  fs::remove_all(primed_dir, ec);
  {
    EstimateOptions o = base;
    o.recovery.checkpoint_dir = primed_dir;
    const EstimateResult primed = estimate_centrality(canonical, o);
    BRICS_CHECK_MSG(!primed.degraded, "chaos priming run degraded");
  }

  ChaosReport report;
  for (const char* site : known_fail_points()) {
    for (int hit = 1; hit <= copts.max_hits; ++hit) {
      ChaosCase c;
      c.site = site;
      c.hit = hit;

      reg.disarm_all();
      fs::remove_all(ckdir, ec);
      const bool load_site = c.site == "recovery.load";
      if (load_site)
        fs::copy(primed_dir, ckdir, fs::copy_options::recursive, ec);
      reg.arm(c.site, hit - 1, /*fire_limit=*/1, FailAction::kThrow);

      bool got_result = false;
      EstimateResult res;
      try {
        // Exercise the I/O sites with fresh reads each case.
        const CsrGraph gg = read_edge_list_file(edge_path);
        const CsrGraph gm = read_metis_file(metis_path);
        BRICS_CHECK(gm.num_nodes() == gg.num_nodes());
        EstimateOptions o = base;
        o.recovery.checkpoint_dir = ckdir;
        o.recovery.resume = load_site;
        res = estimate_centrality(gg, o);
        got_result = true;
      } catch (const FailPointError&) {
        c.outcome = "error:failpoint";
      } catch (const InputError&) {
        c.outcome = "error:input";
      } catch (const CheckFailure& e) {
        fail_case(c, std::string("invariant violated: ") + e.what());
      } catch (const std::exception& e) {
        fail_case(c, std::string("untyped exception: ") + e.what());
      } catch (...) {
        fail_case(c, "unknown exception type");
      }

      // fire_limit=1 disarms the site when it fires, so "still armed"
      // cleanly separates never-evaluated from injected.
      c.fired = !reg.armed(c.site);
      reg.disarm_all();

      if (got_result && !c.failed) {
        if (!valid_result(res, canonical.num_nodes()))
          fail_case(c, "estimate returned an invalid result");
        else
          c.outcome = res.degraded ? "degraded" : "absorbed";
      }
      if (!c.fired && !c.failed) c.outcome = "not-hit";

      // Recoverability: whatever the injection did — typed error, degraded
      // fallback, absorbed retry — a clean resume against the case's
      // checkpoint directory must land exactly on the uninjected result.
      if (c.fired && !c.failed && copts.verify_resume) {
        c.resume_checked = true;
        try {
          EstimateOptions o = base;
          o.recovery.checkpoint_dir = ckdir;
          o.recovery.resume = true;
          const EstimateResult r2 = estimate_centrality(canonical, o);
          if (r2.degraded)
            fail_case(c, "resume run degraded");
          else if (r2.farness != baseline.farness)
            fail_case(c, "resume result differs from baseline");
        } catch (const std::exception& e) {
          fail_case(c, std::string("resume threw: ") + e.what());
        }
      }

      if (c.failed) ++report.failures;
      report.cases.push_back(std::move(c));
    }
  }
  reg.disarm_all();
  return report;
}

std::string ChaosReport::summary() const {
  std::map<std::string, int> tally;
  for (const ChaosCase& c : cases)
    ++tally[c.failed ? std::string("FAIL") : c.outcome];
  std::ostringstream out;
  out << cases.size() << " cases:";
  for (const auto& [outcome, count] : tally)
    out << ' ' << outcome << '=' << count;
  out << '\n';
  for (const ChaosCase& c : cases)
    if (c.failed)
      out << "  " << c.site << " (hit " << c.hit << "): " << c.outcome
          << '\n';
  return out.str();
}

}  // namespace brics
