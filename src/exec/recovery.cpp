#include "exec/recovery.hpp"

#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "exec/checkpoint.hpp"
#include "exec/failpoint.hpp"
#include "obs/metrics.hpp"
#include "reduce/serialize.hpp"

namespace brics {
namespace {

constexpr const char* kReducedFile = "reduced.ckpt";
constexpr const char* kDecompositionFile = "decomposition.ckpt";
constexpr const char* kPlanFile = "plan.ckpt";
constexpr const char* kTraversalFile = "traversal.ckpt";
constexpr const char* kManifestFile = "manifest.ckpt";
// Measure-specific segments saved through the generic load/save_segment
// surface; listed here so fresh runs clear them like the stage segments.
constexpr const char* kBcTraversalFile = "bc_traversal.ckpt";

// ---- payload codec helpers -----------------------------------------------

// A count must leave room for its elements; checked before resize() so a
// bit-flipped length can't trigger a huge allocation before the reads fail.
void guard_count(const ByteReader& r, std::uint64_t n, std::size_t elem) {
  if (n > r.remaining() / elem)
    throw CheckpointError("checkpoint payload count out of bounds");
}

template <typename T>
void put_vec_u32(ByteWriter& w, const std::vector<T>& v) {
  w.u64(v.size());
  for (const T& x : v) w.u32(static_cast<std::uint32_t>(x));
}

template <typename T>
void get_vec_u32(ByteReader& r, std::vector<T>& v) {
  const std::uint64_t n = r.u64();
  guard_count(r, n, 4);
  v.resize(n);
  for (auto& x : v) x = static_cast<T>(r.u32());
}

void put_vec_u64(ByteWriter& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (std::uint64_t x : v) w.u64(x);
}

void get_vec_u64(ByteReader& r, std::vector<std::uint64_t>& v) {
  const std::uint64_t n = r.u64();
  guard_count(r, n, 8);
  v.resize(n);
  for (auto& x : v) x = r.u64();
}

void put_vec_u8(ByteWriter& w, const std::vector<std::uint8_t>& v) {
  w.u64(v.size());
  w.bytes(v.data(), v.size());
}

void get_vec_u8(ByteReader& r, std::vector<std::uint8_t>& v) {
  const std::uint64_t n = r.u64();
  guard_count(r, n, 1);
  v.resize(n);
  r.bytes(v.data(), v.size());
}

// Graphs travel as edge lists; GraphBuilder rebuilds the canonical CSR, so
// a round trip reproduces adjacency (and hence traversal output) exactly —
// the same idiom reduce/serialize.cpp uses.
void put_graph(ByteWriter& w, const CsrGraph& g) {
  w.u32(g.num_nodes());
  const std::vector<Edge> edges = g.edge_list();
  w.u64(edges.size());
  for (const Edge& e : edges) {
    w.u32(e.u);
    w.u32(e.v);
    w.u32(e.w);
  }
}

CsrGraph get_graph(ByteReader& r) {
  const NodeId n = r.u32();
  const std::uint64_t m = r.u64();
  guard_count(r, m, 12);
  GraphBuilder b(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    const NodeId u = r.u32();
    const NodeId v = r.u32();
    const Weight wt = r.u32();
    if (u >= n || v >= n)
      throw CheckpointError("checkpoint graph edge endpoint out of range");
    b.add_edge(u, v, wt);
  }
  return b.build();
}

void put_subgraph(ByteWriter& w, const SubgraphMap& sub) {
  put_graph(w, sub.graph);
  put_vec_u32(w, sub.to_old);
  put_vec_u32(w, sub.to_new);
}

SubgraphMap get_subgraph(ByteReader& r) {
  SubgraphMap sub;
  sub.graph = get_graph(r);
  get_vec_u32(r, sub.to_old);
  get_vec_u32(r, sub.to_new);
  return sub;
}

// ---- Decomposition -------------------------------------------------------

std::string encode_decomposition(const Decomposition& dec) {
  ByteWriter w;
  const BccRaw raw = dec.bcc.to_raw();
  w.u64(raw.blocks.size());
  for (const auto& blk : raw.blocks) put_vec_u32(w, blk);
  put_vec_u8(w, raw.is_cut);
  put_vec_u64(w, raw.member_offsets);
  put_vec_u32(w, raw.memberships);
  w.u32(raw.num_cuts);

  const BlockCutTree& bct = dec.bct;
  put_vec_u32(w, bct.cut_nodes);
  put_vec_u32(w, bct.cut_of_node);
  w.u64(bct.block_cuts.size());
  for (const auto& cs : bct.block_cuts) put_vec_u32(w, cs);
  w.u64(bct.cut_blocks.size());
  for (const auto& bs : bct.cut_blocks) put_vec_u32(w, bs);
  put_vec_u32(w, bct.parent_cut);
  put_vec_u32(w, bct.parent_block);
  put_vec_u32(w, bct.top_down);

  put_vec_u32(w, dec.owner);
  put_vec_u32(w, dec.virt_owner);

  w.u64(dec.blocks.size());
  for (const BlockInfo& bi : dec.blocks) {
    put_subgraph(w, bi.sub);
    put_vec_u32(w, bi.cuts_local);
    w.u32(bi.cut_count);
    put_vec_u32(w, bi.records);
    put_vec_u32(w, bi.virtuals);
    put_vec_u8(w, bi.owned);
    w.u64(bi.own_mass);
  }
  return w.str();
}

Decomposition decode_decomposition(std::string_view payload,
                                   const ReducedGraph& rg) {
  ByteReader r(payload);
  BccRaw raw;
  {
    const std::uint64_t nb = r.u64();
    guard_count(r, nb, 8);
    raw.blocks.resize(nb);
    for (auto& blk : raw.blocks) get_vec_u32(r, blk);
  }
  get_vec_u8(r, raw.is_cut);
  get_vec_u64(r, raw.member_offsets);
  get_vec_u32(r, raw.memberships);
  raw.num_cuts = r.u32();

  Decomposition dec;
  dec.bcc = BccResult::from_raw(std::move(raw));

  BlockCutTree& bct = dec.bct;
  get_vec_u32(r, bct.cut_nodes);
  get_vec_u32(r, bct.cut_of_node);
  {
    const std::uint64_t nb = r.u64();
    guard_count(r, nb, 8);
    bct.block_cuts.resize(nb);
    for (auto& cs : bct.block_cuts) get_vec_u32(r, cs);
    const std::uint64_t nc = r.u64();
    guard_count(r, nc, 8);
    bct.cut_blocks.resize(nc);
    for (auto& bs : bct.cut_blocks) get_vec_u32(r, bs);
  }
  get_vec_u32(r, bct.parent_cut);
  get_vec_u32(r, bct.parent_block);
  get_vec_u32(r, bct.top_down);

  get_vec_u32(r, dec.owner);
  get_vec_u32(r, dec.virt_owner);

  {
    const std::uint64_t nb = r.u64();
    guard_count(r, nb, 8);
    dec.blocks.resize(nb);
    for (BlockInfo& bi : dec.blocks) {
      bi.sub = get_subgraph(r);
      get_vec_u32(r, bi.cuts_local);
      bi.cut_count = r.u32();
      get_vec_u32(r, bi.records);
      get_vec_u32(r, bi.virtuals);
      get_vec_u8(r, bi.owned);
      bi.own_mass = r.u64();
    }
  }
  if (!r.done())
    throw CheckpointError("trailing bytes in decomposition checkpoint");
  const NodeId n = rg.ledger.num_nodes();
  if (dec.owner.size() != n || dec.virt_owner.size() != n ||
      dec.bcc.num_blocks() != dec.num_blocks() ||
      dec.bct.num_blocks() != dec.num_blocks())
    throw CheckpointError(
        "decomposition checkpoint does not match the reduced graph");
  return dec;
}

// ---- SamplePlan ----------------------------------------------------------

std::string encode_plan(const SamplePlan& plan) {
  ByteWriter w;
  w.u64(plan.blocks.size());
  for (const BlockPlan& bp : plan.blocks) {
    put_vec_u32(w, bp.samples);
    w.u32(bp.mandatory);
    w.u8(static_cast<std::uint8_t>(bp.kernel));
  }
  w.u32(plan.planned_total);
  w.u32(plan.mandatory_total);
  w.u8(plan.capped ? 1 : 0);
  return w.str();
}

SamplePlan decode_plan(std::string_view payload, const Decomposition& dec) {
  ByteReader r(payload);
  SamplePlan plan;
  const std::uint64_t nb = r.u64();
  guard_count(r, nb, 8);
  plan.blocks.resize(nb);
  for (BlockPlan& bp : plan.blocks) {
    get_vec_u32(r, bp.samples);
    bp.mandatory = r.u32();
    bp.kernel = static_cast<KernelChoice>(r.u8());
    if (bp.mandatory > bp.samples.size() ||
        bp.kernel > KernelChoice::kBatched ||
        bp.kernel == KernelChoice::kAuto)
      throw CheckpointError("malformed block plan in plan checkpoint");
  }
  plan.planned_total = r.u32();
  plan.mandatory_total = r.u32();
  plan.capped = r.u8() != 0;
  if (!r.done()) throw CheckpointError("trailing bytes in plan checkpoint");
  if (plan.blocks.size() != dec.num_blocks())
    throw CheckpointError("plan checkpoint does not match decomposition");
  return plan;
}

// ---- TraversalResults ----------------------------------------------------

std::string encode_traversal(const TraversalResults& trav) {
  ByteWriter w;
  w.u64(trav.blocks.size());
  for (const TraversalResults::BlockData& bd : trav.blocks) {
    put_vec_u8(w, bd.completed);
    put_vec_u64(w, bd.dsum_own);
    put_vec_u32(w, bd.dcc);
  }
  put_vec_u64(w, trav.acc);
  put_vec_u64(w, trav.acc_own);
  put_vec_u64(w, trav.intra_exact);
  w.u32(trav.completed_total);
  w.u8(trav.cut ? 1 : 0);
  return w.str();
}

TraversalResults decode_traversal(std::string_view payload,
                                  const Decomposition& dec,
                                  const SamplePlan& plan) {
  ByteReader r(payload);
  TraversalResults trav;
  const std::uint64_t nb = r.u64();
  guard_count(r, nb, 8);
  trav.blocks.resize(nb);
  for (TraversalResults::BlockData& bd : trav.blocks) {
    get_vec_u8(r, bd.completed);
    get_vec_u64(r, bd.dsum_own);
    get_vec_u32(r, bd.dcc);
  }
  get_vec_u64(r, trav.acc);
  get_vec_u64(r, trav.acc_own);
  get_vec_u64(r, trav.intra_exact);
  trav.completed_total = r.u32();
  trav.cut = r.u8() != 0;
  if (!r.done())
    throw CheckpointError("trailing bytes in traversal checkpoint");

  // Shape validation against the plan this traversal claims to extend: a
  // stale segment from a different run shape is rejected, not resumed.
  const std::size_t n = dec.owner.size();
  if (trav.blocks.size() != dec.num_blocks() || trav.acc.size() != n ||
      trav.acc_own.size() != n || trav.intra_exact.size() != n)
    throw CheckpointError(
        "traversal checkpoint does not match decomposition");
  for (BlockId b = 0; b < trav.blocks.size(); ++b) {
    const TraversalResults::BlockData& bd = trav.blocks[b];
    const std::size_t cc = dec.blocks[b].cut_count;
    if (bd.completed.size() != plan.blocks[b].samples.size() ||
        bd.dsum_own.size() != cc || bd.dcc.size() != cc * cc)
      throw CheckpointError("traversal checkpoint does not match plan");
  }
  return trav;
}

}  // namespace

// ---- config hash ---------------------------------------------------------

std::uint64_t recovery_config_hash(const CsrGraph& g,
                                   const EstimateOptions& opts) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(g.num_nodes());
  mix(g.num_edges());
  for (const Edge& e : g.edge_list()) {
    mix(e.u);
    mix(e.v);
    mix(e.w);
  }
  std::uint64_t rate_bits;
  std::memcpy(&rate_bits, &opts.sample_rate, sizeof rate_bits);
  mix(rate_bits);
  mix(opts.seed);
  mix(static_cast<std::uint64_t>(opts.reduce.identical) |
      static_cast<std::uint64_t>(opts.reduce.chains) << 1 |
      static_cast<std::uint64_t>(opts.reduce.redundant) << 2 |
      static_cast<std::uint64_t>(opts.reduce.iterate) << 3 |
      static_cast<std::uint64_t>(opts.use_bcc) << 4 |
      static_cast<std::uint64_t>(opts.reduce.pendant_only) << 5);
  mix(static_cast<std::uint64_t>(opts.reduce.max_rounds));
  mix(static_cast<std::uint64_t>(opts.strategy));
  mix(static_cast<std::uint64_t>(opts.kernel));
  // A farness checkpoint directory must never feed a betweenness run (and
  // vice versa): the traversal accumulators mean different things.
  mix(static_cast<std::uint64_t>(opts.measure));
  mix(opts.budget.max_sources);  // changes the plan; timeout does not
  return h;
}

// ---- Recovery ------------------------------------------------------------

Recovery::Recovery(const RecoveryOptions& opts, std::uint64_t config_hash)
    : opts_(opts), hash_(config_hash) {
  std::error_code ec;
  std::filesystem::create_directories(opts_.checkpoint_dir, ec);
  // A writer killed mid-write_segment leaves "<name>.ckpt.tmp" behind;
  // nothing ever reads those, so sweep them on every startup (fresh AND
  // resume) instead of letting them accumulate forever.
  sweep_orphan_tmp_segments(opts_.checkpoint_dir);
  if (!opts_.resume) {
    // Fresh run: stale segments from an earlier run must not leak into a
    // later --resume against this directory.
    for (const char* f : {kReducedFile, kDecompositionFile, kPlanFile,
                          kTraversalFile, kManifestFile, kBcTraversalFile})
      std::filesystem::remove(path(f), ec);
  } else {
    try {
      const std::string payload =
          read_segment(path(kManifestFile), SegmentKind::kManifest, hash_);
      ByteReader r(payload);
      prior_attempts_ = r.u32();
      prior_wall_s_ = r.f64();
    } catch (const std::exception&) {
      // No usable manifest: treat as the first attempt in this directory.
    }
  }
  stats_.attempt = prior_attempts_ + 1;
}

namespace {

void count_loaded() {
  BRICS_COUNTER(c, "recovery.checkpoints_loaded");
  BRICS_COUNTER_ADD(c, 1);
}
void count_rejected() {
  BRICS_COUNTER(c, "recovery.checkpoints_rejected");
  BRICS_COUNTER_ADD(c, 1);
}
void count_written() {
  BRICS_COUNTER(c, "recovery.checkpoints_written");
  BRICS_COUNTER_ADD(c, 1);
}
void count_save_failed() {
  BRICS_COUNTER(c, "recovery.checkpoint_save_failures");
  BRICS_COUNTER_ADD(c, 1);
}

bool file_exists(const std::string& p) {
  std::error_code ec;
  return std::filesystem::exists(p, ec);
}

}  // namespace

std::optional<ReducedGraph> Recovery::load_reduced() {
  if (!opts_.resume) return std::nullopt;
  const std::string p = path(kReducedFile);
  if (!file_exists(p)) return std::nullopt;
  try {
    BRICS_FAILPOINT("recovery.load");
    std::istringstream in(read_segment(p, SegmentKind::kReduced, hash_));
    ReducedGraph rg = load_reduction(in);
    ++stats_.checkpoints_loaded;
    stats_.resumed = true;
    count_loaded();
    return rg;
  } catch (const std::exception&) {
    ++stats_.checkpoints_rejected;
    count_rejected();
    return std::nullopt;
  }
}

void Recovery::save_reduced(const ReducedGraph& rg) {
  try {
    BRICS_FAILPOINT("recovery.save");
    std::ostringstream out;
    save_reduction(rg, out);
    write_segment(opts_.checkpoint_dir, kReducedFile, SegmentKind::kReduced,
                  hash_, out.str());
    ++stats_.checkpoints_written;
    count_written();
  } catch (const std::exception&) {
    ++stats_.checkpoint_save_failures;
    count_save_failed();
  }
}

bool Recovery::load_decomposition(Decomposition& dec,
                                  const ReducedGraph& rg) {
  if (!opts_.resume) return false;
  const std::string p = path(kDecompositionFile);
  if (!file_exists(p)) return false;
  try {
    BRICS_FAILPOINT("recovery.load");
    dec = decode_decomposition(
        read_segment(p, SegmentKind::kDecomposition, hash_), rg);
  } catch (const std::exception&) {
    ++stats_.checkpoints_rejected;
    count_rejected();
    return false;
  }
  ++stats_.checkpoints_loaded;
  stats_.resumed = true;
  count_loaded();
  return true;
}

void Recovery::save_decomposition(const Decomposition& dec) {
  try {
    BRICS_FAILPOINT("recovery.save");
    write_segment(opts_.checkpoint_dir, kDecompositionFile,
                  SegmentKind::kDecomposition, hash_,
                  encode_decomposition(dec));
    ++stats_.checkpoints_written;
    count_written();
  } catch (const std::exception&) {
    ++stats_.checkpoint_save_failures;
    count_save_failed();
  }
}

bool Recovery::load_plan(SamplePlan& plan, const Decomposition& dec) {
  if (!opts_.resume) return false;
  const std::string p = path(kPlanFile);
  if (!file_exists(p)) return false;
  try {
    BRICS_FAILPOINT("recovery.load");
    plan = decode_plan(read_segment(p, SegmentKind::kPlan, hash_), dec);
  } catch (const std::exception&) {
    ++stats_.checkpoints_rejected;
    count_rejected();
    return false;
  }
  ++stats_.checkpoints_loaded;
  stats_.resumed = true;
  count_loaded();
  return true;
}

void Recovery::save_plan(const SamplePlan& plan) {
  try {
    BRICS_FAILPOINT("recovery.save");
    write_segment(opts_.checkpoint_dir, kPlanFile, SegmentKind::kPlan,
                  hash_, encode_plan(plan));
    ++stats_.checkpoints_written;
    count_written();
  } catch (const std::exception&) {
    ++stats_.checkpoint_save_failures;
    count_save_failed();
  }
}

bool Recovery::load_traversal(TraversalResults& trav,
                              const Decomposition& dec,
                              const SamplePlan& plan) {
  if (!opts_.resume) return false;
  const std::string p = path(kTraversalFile);
  if (!file_exists(p)) return false;
  try {
    BRICS_FAILPOINT("recovery.load");
    trav = decode_traversal(read_segment(p, SegmentKind::kTraversal, hash_),
                            dec, plan);
  } catch (const std::exception&) {
    ++stats_.checkpoints_rejected;
    count_rejected();
    return false;
  }
  ++stats_.checkpoints_loaded;
  stats_.resumed = true;
  count_loaded();
  return true;
}

void Recovery::save_traversal(const TraversalResults& trav) {
  try {
    BRICS_FAILPOINT("recovery.save");
    write_segment(opts_.checkpoint_dir, kTraversalFile,
                  SegmentKind::kTraversal, hash_, encode_traversal(trav));
    ++stats_.checkpoints_written;
    count_written();
  } catch (const std::exception&) {
    ++stats_.checkpoint_save_failures;
    count_save_failed();
  }
  // Keep the manifest fresh alongside every traversal snapshot so a crash
  // after this wave still knows the attempt count and elapsed wall clock.
  write_manifest();
}

bool Recovery::load_segment(const char* name, SegmentKind kind,
                            std::string& payload) {
  if (!opts_.resume) return false;
  const std::string p = path(name);
  if (!file_exists(p)) return false;
  try {
    BRICS_FAILPOINT("recovery.load");
    payload = read_segment(p, kind, hash_);
  } catch (const std::exception&) {
    ++stats_.checkpoints_rejected;
    count_rejected();
    return false;
  }
  ++stats_.checkpoints_loaded;
  stats_.resumed = true;
  count_loaded();
  return true;
}

void Recovery::save_segment(const char* name, SegmentKind kind,
                            std::string_view payload) {
  try {
    BRICS_FAILPOINT("recovery.save");
    write_segment(opts_.checkpoint_dir, name, kind, hash_, payload);
    ++stats_.checkpoints_written;
    count_written();
  } catch (const std::exception&) {
    ++stats_.checkpoint_save_failures;
    count_save_failed();
  }
  // Like save_traversal: segment savers run mid-stage (wave snapshots), so
  // keep the manifest's attempt/wall accounting fresh alongside them.
  write_manifest();
}

void Recovery::write_manifest() {
  try {
    ByteWriter w;
    w.u32(stats_.attempt);
    w.f64(cumulative_wall_s());
    write_segment(opts_.checkpoint_dir, kManifestFile,
                  SegmentKind::kManifest, hash_, w.str());
  } catch (const std::exception&) {
    ++stats_.checkpoint_save_failures;
    count_save_failed();
  }
}

void Recovery::finalize(RecoveryStats& out) {
  write_manifest();
  stats_.cumulative_wall_s = cumulative_wall_s();
  out.checkpoints_written = stats_.checkpoints_written;
  out.checkpoints_loaded = stats_.checkpoints_loaded;
  out.checkpoints_rejected = stats_.checkpoints_rejected;
  out.checkpoint_save_failures = stats_.checkpoint_save_failures;
  out.attempt = stats_.attempt;
  out.resumed = stats_.resumed;
  out.cumulative_wall_s = stats_.cumulative_wall_s;
}

}  // namespace brics
