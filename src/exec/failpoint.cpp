#include "exec/failpoint.hpp"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace brics {

struct FailPointRegistry::Impl {
  std::atomic<int> armed{0};  // fast-path gate: number of armed points
  std::mutex mu;
  std::unordered_map<std::string, int> countdown;  // armed name -> skips left
};

FailPointRegistry& FailPointRegistry::instance() {
  static FailPointRegistry reg;
  return reg;
}

FailPointRegistry::Impl& FailPointRegistry::impl() {
  static Impl impl;
  return impl;
}

void FailPointRegistry::arm(const std::string& name, int skip_hits) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto [it, fresh] = im.countdown.insert_or_assign(name, skip_hits);
  (void)it;
  if (fresh) im.armed.fetch_add(1, std::memory_order_relaxed);
}

void FailPointRegistry::disarm(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.countdown.erase(name) > 0)
    im.armed.fetch_sub(1, std::memory_order_relaxed);
}

void FailPointRegistry::disarm_all() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.armed.store(0, std::memory_order_relaxed);
  im.countdown.clear();
}

bool FailPointRegistry::should_fail(const char* name) {
  Impl& im = impl();
  if (im.armed.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.countdown.find(name);
  if (it == im.countdown.end()) return false;
  if (it->second > 0) {
    --it->second;
    return false;
  }
  BRICS_COUNTER(c_fired, "exec.failpoints_fired");
  BRICS_COUNTER_ADD(c_fired, 1);
  return true;
}

}  // namespace brics
