#include "exec/failpoint.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/request.hpp"

namespace brics {
namespace {

// Keep in sync with every BRICS_FAILPOINT site in the library. The chaos
// driver sweeps this list, and arm_from_spec validates names against it —
// a typo'd site in BRICS_FAILPOINTS is an error, not a silent no-op.
constexpr const char* kKnownFailPoints[] = {
    "io.edge_list",      // graph/graph_io.cpp
    "io.metis",          // graph/metis_io.cpp
    "reduce.pipeline",   // reduce/reducer.cpp
    "bcc.decompose",     // bcc/bcc.cpp
    "bcc.bct",           // bcc/bct.cpp
    "plan.build",        // pipeline/stages.cpp (PlanStage)
    "traverse.task",     // pipeline/stages.cpp (task entry, retryable)
    "traverse.sink",     // pipeline/stages.cpp (fold entry, retryable)
    "aggregate.combine", // pipeline/stages.cpp (AggregateStage)
    "recovery.save",     // exec/recovery.cpp (segment write)
    "recovery.load",     // exec/recovery.cpp (segment read)
    "server.accept",     // server/server.cpp (connection accepted)
    "server.read",       // server/protocol.cpp (request frame read)
    "server.write",      // server/protocol.cpp (reply frame write)
    "server.enqueue",    // server/server.cpp (admission-queue push)
    "server.apply",      // server/engine.cpp (edge-batch apply)
};

struct ArmState {
  int skip = 0;        // evaluations to absorb before triggering
  int fires_left = -1; // firings until self-disarm; -1 = unlimited
  FailAction action = FailAction::kThrow;
};

bool is_known(const std::string& name) {
  for (const char* k : kKnownFailPoints)
    if (name == k) return true;
  return false;
}

}  // namespace

struct FailPointRegistry::Impl {
  std::atomic<int> armed{0};  // fast-path gate: number of armed points
  mutable std::mutex mu;
  std::unordered_map<std::string, ArmState> sites;
};

FailPointRegistry& FailPointRegistry::instance() {
  static FailPointRegistry reg;
  return reg;
}

FailPointRegistry::Impl& FailPointRegistry::impl() {
  static Impl impl;
  return impl;
}

const FailPointRegistry::Impl& FailPointRegistry::impl() const {
  return const_cast<FailPointRegistry*>(this)->impl();
}

void FailPointRegistry::arm(const std::string& name, int skip_hits,
                            int fire_limit, FailAction action) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto [it, fresh] =
      im.sites.insert_or_assign(name, ArmState{skip_hits, fire_limit, action});
  (void)it;
  if (fresh) im.armed.fetch_add(1, std::memory_order_relaxed);
}

void FailPointRegistry::disarm(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.sites.erase(name) > 0)
    im.armed.fetch_sub(1, std::memory_order_relaxed);
}

void FailPointRegistry::disarm_all() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.armed.store(0, std::memory_order_relaxed);
  im.sites.clear();
}

bool FailPointRegistry::armed(const std::string& name) const {
  const Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.sites.find(name) != im.sites.end();
}

bool FailPointRegistry::should_fail(const char* name) {
  Impl& im = impl();
  if (im.armed.load(std::memory_order_relaxed) == 0) return false;
  FailAction action;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.sites.find(name);
    if (it == im.sites.end()) return false;
    ArmState& st = it->second;
    if (st.skip > 0) {
      --st.skip;
      return false;
    }
    action = st.action;
    if (st.fires_left > 0 && --st.fires_left == 0) {
      im.sites.erase(it);
      im.armed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  BRICS_COUNTER(c_fired, "exec.failpoints_fired");
  BRICS_COUNTER_ADD(c_fired, 1);
  // The black box records every fired site (name is a string literal at
  // every BRICS_FAILPOINT site, so storing the pointer is safe) — a chaos
  // failure's dump shows which injected fault preceded it.
  FlightRecorder::global().record(FlightEventKind::kFailPoint,
                                  current_request_id(), 0, 0, name);
  if (action == FailAction::kKill) {
    // Simulated hard crash: no unwinding, no atexit, no flushed buffers —
    // exactly what the checkpoint/resume machinery must survive.
    std::raise(SIGKILL);
  }
  return true;
}

void FailPointRegistry::arm_from_spec(const std::string& spec) {
  std::size_t pos = 0;
  bool saw_entry = false;
  while (pos <= spec.size()) {
    std::size_t end = spec.find_first_of(",;", pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    const std::size_t b = entry.find_first_not_of(" \t");
    if (b == std::string::npos) {
      if (pos > spec.size()) break;
      continue;  // allow stray separators / blanks between entries
    }
    entry = entry.substr(b, entry.find_last_not_of(" \t") - b + 1);
    saw_entry = true;

    // entry := name [ '=' N ] { ':' modifier }
    int skip = 0, fire_limit = -1;
    FailAction action = FailAction::kThrow;
    std::string head = entry;
    while (true) {
      const std::size_t colon = head.rfind(':');
      if (colon == std::string::npos) break;
      const std::string mod = head.substr(colon + 1);
      if (mod == "once") {
        fire_limit = 1;
      } else if (mod == "kill") {
        action = FailAction::kKill;
      } else {
        throw InputError("BRICS_FAILPOINTS: unknown modifier ':" + mod +
                         "' in '" + entry + "' (want :once or :kill)");
      }
      head = head.substr(0, colon);
    }
    const std::size_t eq = head.find('=');
    std::string name = head.substr(0, eq);
    if (eq != std::string::npos) {
      const std::string num = head.substr(eq + 1);
      char* endp = nullptr;
      const long n = std::strtol(num.c_str(), &endp, 10);
      if (num.empty() || endp == num.c_str() || *endp != '\0' || n < 1)
        throw InputError("BRICS_FAILPOINTS: bad hit count '" + num +
                         "' in '" + entry + "' (want an integer >= 1)");
      skip = static_cast<int>(n - 1);
    }
    if (name.empty())
      throw InputError("BRICS_FAILPOINTS: empty fail-point name in '" +
                       entry + "'");
    if (!is_known(name))
      throw InputError("BRICS_FAILPOINTS: unknown fail point '" + name +
                       "'");
    arm(name, skip, fire_limit, action);
    if (pos > spec.size()) break;
  }
  if (!saw_entry && !spec.empty() &&
      spec.find_first_not_of(" \t,;") == std::string::npos)
    throw InputError("BRICS_FAILPOINTS: no fail-point entries in '" + spec +
                     "'");
}

void FailPointRegistry::arm_from_env() {
  const char* env = std::getenv("BRICS_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  arm_from_spec(env);
}

std::span<const char* const> known_fail_points() {
  return kKnownFailPoints;
}

}  // namespace brics
