// Pivot-based farness estimation (Cohen, Delling, Pajor, Werneck: "Computing
// classic closeness centrality, at scale", COSN 2014 — the paper's §II
// basis: "estimates ... can be obtained by combining two popular
// techniques: sampling and pivoting").
//
// Sampling (Algorithm 1) averages the distances each node *observes to* the
// sampled sources. Pivoting instead assigns every non-sampled node v to its
// nearest sampled pivot p(v) and uses the pivot's exactly-known farness,
// corrected by the assignment distance: by the triangle inequality
//   farness(p) - n d(v,p)  <=  farness(v)  <=  farness(p) + n d(v,p),
// and the estimator returns farness(p(v)) + bias * d(v, p(v)) * (n - 1)
// with bias in [-1, 1] (0 = plain pivot value).
//
// The hybrid estimator averages the sampling and pivoting predictions —
// Cohen et al.'s observation that their errors are weakly correlated.
// All three run off ONE set of traversals, so they cost the same.
#pragma once

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

enum class PivotCombine {
  kPivotOnly,   ///< farness(p(v)) + bias correction
  kHybrid,      ///< mean of sampling and pivoting predictions
};

struct PivotOptions {
  double sample_rate = 0.2;
  std::uint64_t seed = 1;
  PivotCombine combine = PivotCombine::kHybrid;
  double bias = 0.0;  ///< distance-correction weight in [-1, 1]
  /// Deadline / source cap; on expiry the estimator degrades to the pivots
  /// traversed in time (at least one always completes).
  RunBudget budget;
};

/// Pivot/hybrid farness estimation on a connected graph. Sampled nodes are
/// exact; every other node gets the selected combined prediction.
EstimateResult estimate_pivoting(const CsrGraph& g, const PivotOptions& opts);

}  // namespace brics
