// Quality metrics from the paper (§IV-C1): per-node approximation ratio
//   AR(v) = farness_estimated(v) / farness_actual(v)
// and Quality = mean AR over all nodes. Quality == 1 means exact; the
// further from 1 (either side), the worse the estimate.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/stats.hpp"

namespace brics {

/// Per-node approximation ratios. `actual` entries must be positive
/// (guaranteed for connected graphs with n >= 2).
std::vector<double> approximation_ratios(std::span<const double> estimated,
                                         std::span<const FarnessSum> actual);

/// Quality = mean AR, plus distribution statistics for error analysis.
struct QualityReport {
  double quality = 1.0;        ///< mean AR (the paper's headline metric)
  double mean_abs_err = 0.0;   ///< mean |AR - 1|
  double max_abs_err = 0.0;    ///< max |AR - 1|
  double p95_abs_err = 0.0;    ///< 95th percentile of |AR - 1|
};

QualityReport quality(std::span<const double> estimated,
                      std::span<const FarnessSum> actual);

}  // namespace brics
