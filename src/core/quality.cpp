#include "core/quality.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace brics {

std::vector<double> approximation_ratios(std::span<const double> estimated,
                                         std::span<const FarnessSum> actual) {
  BRICS_CHECK(estimated.size() == actual.size());
  std::vector<double> ar(estimated.size());
  for (std::size_t v = 0; v < estimated.size(); ++v) {
    BRICS_CHECK_MSG(actual[v] > 0, "actual farness of node "
                                       << v << " is zero (n < 2?)");
    ar[v] = estimated[v] / static_cast<double>(actual[v]);
  }
  return ar;
}

QualityReport quality(std::span<const double> estimated,
                      std::span<const FarnessSum> actual) {
  std::vector<double> ar = approximation_ratios(estimated, actual);
  QualityReport q;
  q.quality = summarize(ar).mean;
  std::vector<double> abs_err(ar.size());
  for (std::size_t i = 0; i < ar.size(); ++i)
    abs_err[i] = std::abs(ar[i] - 1.0);
  Summary s = summarize(abs_err);
  q.mean_abs_err = s.mean;
  q.max_abs_err = s.max;
  q.p95_abs_err = percentile(abs_err, 95.0);
  return q;
}

}  // namespace brics
