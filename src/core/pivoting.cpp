#include "core/pivoting.hpp"

#include <algorithm>
#include <cmath>

#include "traverse/multi_source.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace brics {

EstimateResult estimate_pivoting(const CsrGraph& g,
                                 const PivotOptions& opts) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK_MSG(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
                  "sample_rate must be in (0, 1]");
  BRICS_CHECK_MSG(opts.bias >= -1.0 && opts.bias <= 1.0,
                  "bias must be in [-1, 1]");
  Timer total;
  EstimateResult res;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);

  const NodeId planned = std::clamp<NodeId>(
      static_cast<NodeId>(std::ceil(opts.sample_rate * n)), 1, n);
  NodeId k = planned;
  if (opts.budget.max_sources > 0 && k > opts.budget.max_sources)
    k = std::max<NodeId>(opts.budget.max_sources, 1);
  Rng rng(opts.seed);
  std::vector<NodeId> sources = sample_without_replacement(n, k, rng);
  CancelToken token(opts.budget.timeout_ms);

  // One traversal sweep feeds both estimators: the distance-sum
  // accumulator (sampling) and the nearest-pivot assignment (pivoting).
  // Nearest-pivot updates use a per-thread (distance, pivot) table merged
  // by minimum afterwards.
  struct Assign {
    Dist d = kInfDist;
    NodeId pivot = kInvalidNode;
  };
  std::vector<std::vector<Assign>> assign_bufs(
      static_cast<std::size_t>(max_threads()));
  std::vector<FarnessSum> pivot_farness(n, 0);

  Timer traverse;
  DistanceSumAccumulator acc(n);
  std::vector<std::uint8_t> completed;
  const std::size_t done = for_each_source_budgeted(
      g, sources, token, /*mandatory=*/1, completed,
      [&](std::size_t, NodeId s, std::span<const Dist> dist) {
        acc.add(dist);
        pivot_farness[s] = aggregate_distances(dist).sum;
        res.exact[s] = 1;
        auto& buf = assign_bufs[static_cast<std::size_t>(thread_id())];
        if (buf.empty()) buf.assign(n, Assign{});
        for (NodeId v = 0; v < n; ++v) {
          if (dist[v] < buf[v].d) {
            buf[v].d = dist[v];
            buf[v].pivot = s;
          }
        }
      });
  res.times.traverse_s = traverse.seconds();

  Timer combine_t;
  std::vector<Assign> assign(n);
  for (const auto& buf : assign_bufs) {
    if (buf.empty()) continue;
    for (NodeId v = 0; v < n; ++v)
      if (buf[v].d < assign[v].d) assign[v] = buf[v];
  }
  std::vector<FarnessSum> sums = acc.merge();
  const NodeId k_done = static_cast<NodeId>(done);
  res.samples = k_done;
  res.planned_samples = planned;
  res.achieved_sample_rate = opts.sample_rate *
                             static_cast<double>(k_done) /
                             static_cast<double>(planned);
  if (k_done < k) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kTraverse;
  } else if (k < planned) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kPlan;
  }
  const double scale =
      static_cast<double>(n - 1) / static_cast<double>(k_done);

  for (NodeId v = 0; v < n; ++v) {
    if (res.exact[v]) {
      res.farness[v] = static_cast<double>(pivot_farness[v]);
      continue;
    }
    BRICS_CHECK_MSG(assign[v].pivot != kInvalidNode,
                    "node " << v << " unreachable from every pivot"
                            << " (graph must be connected)");
    const double piv =
        static_cast<double>(pivot_farness[assign[v].pivot]) +
        opts.bias * static_cast<double>(assign[v].d) *
            static_cast<double>(n - 1);
    if (opts.combine == PivotCombine::kPivotOnly) {
      res.farness[v] = piv;
    } else {
      const double smp = static_cast<double>(sums[v]) * scale;
      res.farness[v] = 0.5 * (piv + smp);
    }
  }
  res.times.combine_s = combine_t.seconds();
  res.times.total_s = total.seconds();
  return res;
}

}  // namespace brics
