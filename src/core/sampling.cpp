// Flat (undecomposed) sampling estimators, expressed over the same pipeline
// pieces as BRICS: ReduceStage for the reduction step, pick_sample_sources
// for source selection, traverse_flat for the budgeted parallel sweep.
#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "exec/errors.hpp"
#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/context.hpp"
#include "pipeline/kernels.hpp"
#include "pipeline/postprocess.hpp"
#include "pipeline/stages.hpp"
#include "traverse/multi_source.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

// Number of samples for a population of `pop` at `rate`, clamped to [1, pop].
NodeId sample_count(NodeId pop, double rate) {
  BRICS_CHECK_MSG(rate > 0.0 && rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << rate);
  const double k = std::ceil(rate * static_cast<double>(pop));
  return std::clamp<NodeId>(static_cast<NodeId>(k), 1, pop);
}

// Apply the max-sources cap to a planned sample count; at least one source
// always survives so every run yields an estimate.
NodeId apply_source_cap(NodeId planned, const RunBudget& budget) {
  if (budget.max_sources == 0 || planned <= budget.max_sources)
    return planned;
  return std::max<NodeId>(budget.max_sources, 1);
}

// Fill in the degradation report shared by every sampling-style estimator:
// `planned` is what the rate called for, `k` the post-cap plan, `k_done`
// what the deadline let finish.
void report_degradation(EstimateResult& res, const EstimateOptions& opts,
                        NodeId planned, NodeId k, NodeId k_done) {
  res.samples = k_done;
  res.planned_samples = planned;
  res.achieved_sample_rate = opts.sample_rate *
                             static_cast<double>(k_done) /
                             static_cast<double>(planned);
  BRICS_COUNTER(c_planned, "plan.samples_planned");
  BRICS_COUNTER(c_completed, "plan.samples_completed");
  BRICS_COUNTER(c_shed, "plan.samples_shed");
  BRICS_COUNTER_ADD(c_planned, planned);
  BRICS_COUNTER_ADD(c_completed, k_done);
  BRICS_COUNTER_ADD(c_shed, planned - k_done);
  if (k_done < k) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kTraverse;
  } else if (k < planned) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kPlan;
  }
}

// Identity candidate list [0, n): the flat estimator samples the whole
// node set through the same helper the Plan stage uses per block.
std::vector<NodeId> all_nodes(NodeId n) {
  std::vector<NodeId> ids(n);
  for (NodeId v = 0; v < n; ++v) ids[v] = v;
  return ids;
}

}  // namespace

EstimateResult estimate_random_sampling_budgeted(const CsrGraph& g,
                                                 const EstimateOptions& opts,
                                                 const CancelToken& token) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  Timer total;
  BRICS_SPAN(sp_estimate, "estimate.random_sampling");
  EstimateResult res;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);

  const NodeId planned = sample_count(n, opts.sample_rate);
  const NodeId k = apply_source_cap(planned, opts.budget);
  Rng rng(opts.seed);
  const std::vector<NodeId> sources =
      pick_sample_sources(g, all_nodes(n), k, opts.strategy, rng);

  std::optional<PhaseScope> phase_traverse;
  phase_traverse.emplace("traverse", res.times.traverse_s);
  DistanceSumAccumulator acc(n);
  std::vector<std::uint8_t> completed;
  const std::size_t done = traverse_flat(
      g, sources, /*mandatory=*/1, token, opts.kernel, completed,
      [&](std::size_t i, std::span<const Dist> dist) {
        const NodeId s = sources[i];
        res.farness[s] = static_cast<double>(aggregate_distances(dist).sum);
        res.exact[s] = 1;
        acc.add(dist);
      });
  const NodeId k_done = static_cast<NodeId>(done);
  phase_traverse.reset();

  std::optional<PhaseScope> phase_combine;
  phase_combine.emplace("combine", res.times.combine_s);
  std::vector<FarnessSum> sums = acc.merge();
  const double scale =
      static_cast<double>(n - 1) / static_cast<double>(k_done);
  for (NodeId v = 0; v < n; ++v)
    if (!res.exact[v])
      res.farness[v] = static_cast<double>(sums[v]) * scale;
  report_degradation(res, opts, planned, k, k_done);
  phase_combine.reset();
  res.times.total_s = total.seconds();
  res.times.normalize();
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

EstimateResult estimate_random_sampling(const CsrGraph& g,
                                        const EstimateOptions& opts) {
  CancelToken token(opts.budget.timeout_ms);
  return estimate_random_sampling_budgeted(g, opts, token);
}

EstimateResult estimate_reduced_sampling(const CsrGraph& g,
                                         const EstimateOptions& opts) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  BRICS_CHECK_MSG(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << opts.sample_rate);
  Timer total;
  BRICS_SPAN(sp_estimate, "estimate.reduced_sampling");
  CancelToken token(opts.budget.timeout_ms);
  PipelineContext ctx(g, opts, token);

  std::optional<ReducedGraph> maybe_rg;
  try {
    maybe_rg.emplace(ReduceStage{}.run(ctx));
  } catch (const std::exception&) {
    // Reduction faulted or consumed the whole budget: degrade to plain
    // sampling on the unreduced graph under the same (possibly already
    // expired) deadline.
    BRICS_COUNTER(c_degraded, "exec.degraded_runs");
    BRICS_COUNTER_ADD(c_degraded, 1);
    EstimateResult res = estimate_random_sampling_budgeted(g, opts, token);
    res.degraded = true;
    res.cut_phase = ExecPhase::kReduce;
    res.times.total_s = total.seconds();
    res.times.normalize();
    record_exec_metrics(res);
    record_phase_metrics(res.times);
    return res;
  }
  const ReducedGraph& rg = *maybe_rg;

  EstimateResult res;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);
  res.reduce_stats = rg.stats;
  res.times.reduce_s = ctx.times().reduce_s;

  std::vector<NodeId> present_nodes;
  present_nodes.reserve(rg.num_present);
  for (NodeId v = 0; v < n; ++v)
    if (rg.present[v]) present_nodes.push_back(v);
  BRICS_CHECK(!present_nodes.empty());

  const NodeId planned = sample_count(rg.num_present, opts.sample_rate);
  const NodeId k = apply_source_cap(planned, opts.budget);
  Rng rng(opts.seed);
  // Uniform over *present* nodes regardless of opts.strategy — the beta
  // correction below calibrates against exactly this design.
  const std::vector<NodeId> sources = pick_sample_sources(
      rg.graph, present_nodes, k, SampleStrategy::kUniform, rng);

  std::optional<PhaseScope> phase_traverse;
  phase_traverse.emplace("traverse", res.times.traverse_s);
  DistanceSumAccumulator acc(n);
  std::vector<std::uint8_t> completed;
  const std::size_t done = traverse_flat(
      rg.graph, sources, /*mandatory=*/1, token, opts.kernel, completed,
      [&](std::size_t i, std::span<const Dist> dist) {
        // The reduced distance vector becomes a full-graph distance vector
        // once the ledger reconstructs the removed nodes; the source's
        // farness is then exact over all n nodes.
        // (The span aliases the per-thread workspace, which is const here;
        // resolve in a local copy.)
        const NodeId s = sources[i];
        thread_local std::vector<Dist> full;
        full.assign(dist.begin(), dist.end());
        rg.ledger.resolve(full);
        res.farness[s] = static_cast<double>(aggregate_distances(full).sum);
        res.exact[s] = 1;
        acc.add(full);
      });
  const NodeId k_done = static_cast<NodeId>(done);
  phase_traverse.reset();

  std::optional<PhaseScope> phase_combine;
  phase_combine.emplace("combine", res.times.combine_s);
  std::vector<FarnessSum> sums = acc.merge();

  // Sources are uniform over *present* nodes, not over V: removed nodes
  // (chain tails, twins) are never sampled, so the plain (n-1)/k scaling is
  // biased. As in the BCC estimator (DESIGN.md §7.3), learn the correction
  // from the sampled nodes themselves — their exact farness against the
  // raw leave-one-out estimate.
  double beta = 1.0;
  if (k_done >= 2) {
    double exact_sum = 0.0, raw_sum = 0.0;
    for (NodeId i = 0; i < k; ++i) {
      if (!completed[i]) continue;
      const NodeId s = sources[i];
      exact_sum += res.farness[s];
      raw_sum += static_cast<double>(n - 1) *
                 static_cast<double>(sums[s]) /
                 static_cast<double>(k_done - 1);
    }
    if (exact_sum > 0.0 && raw_sum > 0.0) beta = exact_sum / raw_sum;
  }
  const double scale =
      beta * static_cast<double>(n - 1) / static_cast<double>(k_done);
  for (NodeId v = 0; v < n; ++v)
    if (!res.exact[v])
      res.farness[v] = static_cast<double>(sums[v]) * scale;
  refine_removed_estimates(rg.ledger, n, res.farness, res.exact);
  report_degradation(res, opts, planned, k, k_done);
  phase_combine.reset();
  res.times.total_s = total.seconds();
  res.times.normalize();
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

}  // namespace brics
