#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "core/postprocess.hpp"
#include "graph/connectivity.hpp"
#include "traverse/multi_source.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

// Number of samples for a population of `pop` at `rate`, clamped to [1, pop].
NodeId sample_count(NodeId pop, double rate) {
  BRICS_CHECK_MSG(rate > 0.0 && rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << rate);
  const double k = std::ceil(rate * static_cast<double>(pop));
  return std::clamp<NodeId>(static_cast<NodeId>(k), 1, pop);
}

}  // namespace

EstimateResult estimate_random_sampling(const CsrGraph& g,
                                        const EstimateOptions& opts) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  Timer total;
  EstimateResult res;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);

  const NodeId k = sample_count(n, opts.sample_rate);
  Rng rng(opts.seed);
  std::vector<NodeId> sources;
  if (opts.strategy == SampleStrategy::kDegreeWeighted) {
    std::vector<double> wts(n);
    for (NodeId v = 0; v < n; ++v)
      wts[v] = static_cast<double>(g.degree(v));
    sources = weighted_sample_without_replacement(wts, k, rng);
  } else {
    sources = sample_without_replacement(n, k, rng);
  }
  res.samples = k;

  Timer traverse;
  DistanceSumAccumulator acc(n);
  for_each_source(g, sources,
                  [&](std::size_t, NodeId s, std::span<const Dist> dist) {
                    res.farness[s] =
                        static_cast<double>(aggregate_distances(dist).sum);
                    res.exact[s] = 1;
                    acc.add(dist);
                  });
  res.times.traverse_s = traverse.seconds();

  Timer combine;
  std::vector<FarnessSum> sums = acc.merge();
  const double scale = static_cast<double>(n - 1) / static_cast<double>(k);
  for (NodeId v = 0; v < n; ++v)
    if (!res.exact[v])
      res.farness[v] = static_cast<double>(sums[v]) * scale;
  res.times.combine_s = combine.seconds();
  res.times.total_s = total.seconds();
  return res;
}

EstimateResult estimate_reduced_sampling(const CsrGraph& g,
                                         const EstimateOptions& opts) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  Timer total;
  EstimateResult res;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);

  Timer reduce_t;
  ReducedGraph rg = reduce(g, opts.reduce);
  res.reduce_stats = rg.stats;
  res.times.reduce_s = reduce_t.seconds();

  std::vector<NodeId> present_nodes;
  present_nodes.reserve(rg.num_present);
  for (NodeId v = 0; v < n; ++v)
    if (rg.present[v]) present_nodes.push_back(v);
  BRICS_CHECK(!present_nodes.empty());

  const NodeId k = sample_count(rg.num_present, opts.sample_rate);
  Rng rng(opts.seed);
  std::vector<NodeId> pick =
      sample_without_replacement(rg.num_present, k, rng);
  std::vector<NodeId> sources(k);
  for (NodeId i = 0; i < k; ++i) sources[i] = present_nodes[pick[i]];
  res.samples = k;

  Timer traverse;
  DistanceSumAccumulator acc(n);
  for_each_source(
      rg.graph, sources,
      [&](std::size_t, NodeId s, std::span<const Dist> dist) {
        // The reduced distance vector becomes a full-graph distance vector
        // once the ledger reconstructs the removed nodes; the source's
        // farness is then exact over all n nodes.
        // (The span aliases the per-thread workspace, which is const here;
        // resolve in a local copy.)
        thread_local std::vector<Dist> full;
        full.assign(dist.begin(), dist.end());
        rg.ledger.resolve(full);
        res.farness[s] =
            static_cast<double>(aggregate_distances(full).sum);
        res.exact[s] = 1;
        acc.add(full);
      });
  res.times.traverse_s = traverse.seconds();

  Timer combine;
  std::vector<FarnessSum> sums = acc.merge();

  // Sources are uniform over *present* nodes, not over V: removed nodes
  // (chain tails, twins) are never sampled, so the plain (n-1)/k scaling is
  // biased. As in the BCC estimator (DESIGN.md §7.3), learn the correction
  // from the sampled nodes themselves — their exact farness against the
  // raw leave-one-out estimate.
  double beta = 1.0;
  if (k >= 2) {
    double exact_sum = 0.0, raw_sum = 0.0;
    for (NodeId s : sources) {
      exact_sum += res.farness[s];
      raw_sum += static_cast<double>(n - 1) *
                 static_cast<double>(sums[s]) /
                 static_cast<double>(k - 1);
    }
    if (exact_sum > 0.0 && raw_sum > 0.0) beta = exact_sum / raw_sum;
  }
  const double scale =
      beta * static_cast<double>(n - 1) / static_cast<double>(k);
  for (NodeId v = 0; v < n; ++v)
    if (!res.exact[v])
      res.farness[v] = static_cast<double>(sums[v]) * scale;
  refine_removed_estimates(rg.ledger, n, res.farness, res.exact);
  res.times.combine_s = combine.seconds();
  res.times.total_s = total.seconds();
  return res;
}

}  // namespace brics
