// The full BRICS estimator (paper Algorithms 4–6): reductions, biconnected
// decomposition into a block cut-vertex tree, per-block sampling with cut
// vertices forced into every block's sample set, and exact cross-block
// contribution propagation.
//
// Error model: cut vertices are always sampled, so d(v, c) is exact for
// every node v and every cut vertex c of its block; cross-block
// contributions — (weight, dCarry) pairs pushed bottom-up and top-down over
// the BCT — are therefore exact for every node. Only the intra-block
// distance sums of non-sampled nodes are estimated, by scaling over the
// block's samples. This is the mechanism behind the paper's Fig. 5
// quality claim.
#pragma once

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

class Recovery;

/// Estimate farness for all nodes of a connected graph using the full
/// BRICS pipeline. opts.reduce selects the reduction subset (I/C/R);
/// opts.use_bcc is ignored (this entry point always decomposes — use
/// estimate_reduced_sampling for the undecomposed variants).
EstimateResult estimate_brics(const CsrGraph& g, const EstimateOptions& opts);

/// Dispatch on opts.use_bcc between estimate_brics and
/// estimate_reduced_sampling — the single entry point used by benches.
EstimateResult estimate_farness(const CsrGraph& g,
                                const EstimateOptions& opts);

/// Run the BCC estimator on an existing (possibly patched) reduction —
/// the entry point the dynamic extension uses to skip re-reduction.
/// opts.reduce is ignored; result.times.reduce_s is left zero.
EstimateResult estimate_on_reduction(const ReducedGraph& rg,
                                     const EstimateOptions& opts);

/// As estimate_on_reduction but cooperating with an external cancel token,
/// so fall-back paths share the caller's original deadline. Deadlines that
/// fire during sampled traversals degrade in place (optional samples are
/// shed, the result rescaled to the achieved per-block sample counts);
/// deadlines that fire during decomposition — where no partial result
/// exists — throw BudgetExceeded for the caller to handle. phase_out, when
/// non-null, tracks the phase in flight so callers can attribute faults.
/// rec, when non-null, is a bound checkpoint manager (exec/recovery.hpp):
/// Decompose/Plan/Traverse artifacts load from it on resume and persist to
/// it as stages complete. rstats_out, when non-null, receives the retry /
/// quarantine accounting even when a stage throws — the fallback path folds
/// it into its own result.
EstimateResult estimate_on_reduction_budgeted(
    const ReducedGraph& rg, const EstimateOptions& opts,
    const CancelToken& token, ExecPhase* phase_out = nullptr,
    Recovery* rec = nullptr, RecoveryStats* rstats_out = nullptr);

}  // namespace brics
