#include "core/confidence.hpp"

#include <algorithm>
#include <cmath>

#include "traverse/multi_source.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace brics {

ConfidenceResult estimate_with_confidence(const CsrGraph& g,
                                          const ConfidenceOptions& opts) {
  const NodeId n = g.num_nodes();
  BRICS_CHECK_MSG(n >= 2, "confidence estimation needs n >= 2");
  BRICS_CHECK_MSG(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
                  "sample_rate must be in (0, 1]");
  ConfidenceResult res;
  res.farness.assign(n, 0.0);
  res.stderr_.assign(n, 0.0);
  res.exact.assign(n, 0);

  const NodeId k = std::clamp<NodeId>(
      static_cast<NodeId>(std::ceil(opts.sample_rate * n)), 1, n);
  Rng rng(opts.seed);
  std::vector<NodeId> sources = sample_without_replacement(n, k, rng);
  res.samples = k;

  // Per-thread sum and sum-of-squares accumulators.
  struct Moments {
    std::vector<double> sum, sumsq;
  };
  std::vector<Moments> bufs(static_cast<std::size_t>(max_threads()));

  for_each_source(
      g, sources, [&](std::size_t, NodeId s, std::span<const Dist> dist) {
        res.farness[s] =
            static_cast<double>(aggregate_distances(dist).sum);
        res.exact[s] = 1;
        auto& b = bufs[static_cast<std::size_t>(thread_id())];
        if (b.sum.empty()) {
          b.sum.assign(n, 0.0);
          b.sumsq.assign(n, 0.0);
        }
        for (NodeId v = 0; v < n; ++v) {
          if (dist[v] == kInfDist) continue;
          const double d = static_cast<double>(dist[v]);
          b.sum[v] += d;
          b.sumsq[v] += d * d;
        }
      });

  std::vector<double> sum(n, 0.0), sumsq(n, 0.0);
  for (const auto& b : bufs) {
    if (b.sum.empty()) continue;
    for (NodeId v = 0; v < n; ++v) {
      sum[v] += b.sum[v];
      sumsq[v] += b.sumsq[v];
    }
  }

  const double pop = static_cast<double>(n - 1);
  const double kk = static_cast<double>(k);
  // Finite-population correction: sampling without replacement from the
  // n-1 potential targets (k of which were observed).
  const double fpc =
      n > 2 ? std::max(0.0, (pop - kk) / (pop - 1.0)) : 0.0;
  for (NodeId v = 0; v < n; ++v) {
    if (res.exact[v]) continue;
    const double mean = sum[v] / kk;
    res.farness[v] = pop * mean;
    if (k >= 2) {
      const double var =
          std::max(0.0, (sumsq[v] - kk * mean * mean) / (kk - 1.0));
      res.stderr_[v] = pop * std::sqrt(var / kk) * std::sqrt(fpc);
    } else {
      res.stderr_[v] = res.farness[v];  // single sample: no information
    }
  }
  return res;
}

}  // namespace brics
