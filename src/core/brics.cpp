#include "core/brics.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "bcc/bcc.hpp"
#include "bcc/bct.hpp"
#include "core/postprocess.hpp"
#include "core/sampling.hpp"
#include "exec/errors.hpp"
#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "traverse/bfs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

// Everything the estimator knows about one biconnected block.
struct BlockWork {
  SubgraphMap sub;                    // local block graph + id maps
  std::vector<NodeId> cuts_local;     // local ids of the block's cut vertices
  std::vector<NodeId> samples_local;  // cut vertices first, then random picks
  std::uint32_t cut_count = 0;
  std::vector<std::uint32_t> records; // ledger order-ids homed here, ascending
  std::vector<NodeId> virtuals;       // removed (global) nodes homed here
  std::vector<std::uint8_t> owned;    // per local id: owned by this block?
  FarnessSum own_mass = 0;            // owned present + homed virtuals

  // P1 scalars per cut (aligned with cuts_local).
  std::vector<FarnessSum> dsum_own;   // sum of d(c, x) over owned targets
  std::vector<Dist> dcc;              // cut-pair distances, cut_count^2

  // Tree DP outputs per cut.
  std::vector<FarnessSum> ow, od;     // outside weight / distance carry
  FarnessSum od_total = 0;            // sum of od over the block's cuts

  Dist cut_dist(std::size_t i, std::size_t j) const {
    return dcc[i * cut_count + j];
  }
};

// Per-thread scratch for resolving a block's removed nodes on the global id
// space. Only entries touched by the current block are ever written, and
// they are re-set to kInfDist afterwards.
class GlobalResolveScratch {
 public:
  explicit GlobalResolveScratch(NodeId n) : dist_(n, kInfDist) {}

  std::span<Dist> dist() { return dist_; }

  void fill_block(const BlockWork& bw, std::span<const Dist> local) {
    for (NodeId lv = 0; lv < bw.sub.to_old.size(); ++lv)
      dist_[bw.sub.to_old[lv]] = local[lv];
  }

  void clear_block(const BlockWork& bw) {
    for (NodeId g : bw.sub.to_old) dist_[g] = kInfDist;
    for (NodeId g : bw.virtuals) dist_[g] = kInfDist;
  }

 private:
  std::vector<Dist> dist_;
};

// Thread-private accumulation arrays merged after each parallel phase.
class ThreadSums {
 public:
  explicit ThreadSums(NodeId n) : n_(n), bufs_(max_threads()) {}

  std::vector<FarnessSum>& local() {
    auto& b = bufs_[static_cast<std::size_t>(thread_id())];
    if (b.empty()) b.assign(n_, 0);
    return b;
  }

  std::vector<FarnessSum> merge() const {
    std::vector<FarnessSum> total(n_, 0);
    for (const auto& b : bufs_) {
      if (b.empty()) continue;
      for (NodeId v = 0; v < n_; ++v) total[v] += b[v];
    }
    return total;
  }

 private:
  NodeId n_;
  std::vector<std::vector<FarnessSum>> bufs_;
};

// Home block of each ledger record: the block containing all its anchors
// (guaranteed to exist because anchors are pinned and, for through chains,
// joined by the compressed edge).
BlockId record_home(const ReductionLedger& ledger, const BccResult& bcc,
                    const ReductionLedger::OrderEntry& e) {
  using Kind = ReductionLedger::Kind;
  switch (e.kind) {
    case Kind::kIdentical:
      return bcc.blocks_of(ledger.identical()[e.index].rep).front();
    case Kind::kChain: {
      const ChainRecord& r = ledger.chains()[e.index];
      if (r.pendant() || r.cycle()) return bcc.blocks_of(r.u).front();
      auto bu = bcc.blocks_of(r.u), bv = bcc.blocks_of(r.v);
      std::vector<BlockId> common;
      std::set_intersection(bu.begin(), bu.end(), bv.begin(), bv.end(),
                            std::back_inserter(common));
      BRICS_CHECK_MSG(common.size() == 1,
                      "chain anchors share " << common.size() << " blocks");
      return common.front();
    }
    case Kind::kRedundant: {
      const RedundantRecord& r = ledger.redundant()[e.index];
      std::vector<BlockId> common(bcc.blocks_of(r.nbrs[0]).begin(),
                                  bcc.blocks_of(r.nbrs[0]).end());
      for (std::size_t i = 1; i < r.degree; ++i) {
        auto bi = bcc.blocks_of(r.nbrs[i]);
        std::vector<BlockId> next;
        std::set_intersection(common.begin(), common.end(), bi.begin(),
                              bi.end(), std::back_inserter(next));
        common = std::move(next);
      }
      BRICS_CHECK_MSG(!common.empty(),
                      "redundant anchors share no block");
      return common.front();
    }
  }
  return kInvalidBlock;
}

void append_record_virtuals(const ReductionLedger& ledger,
                            const ReductionLedger::OrderEntry& e,
                            std::vector<NodeId>& out) {
  using Kind = ReductionLedger::Kind;
  switch (e.kind) {
    case Kind::kIdentical:
      out.push_back(ledger.identical()[e.index].node);
      break;
    case Kind::kChain: {
      const auto& m = ledger.chains()[e.index].members;
      out.insert(out.end(), m.begin(), m.end());
      break;
    }
    case Kind::kRedundant:
      out.push_back(ledger.redundant()[e.index].node);
      break;
  }
}

// The degraded escape hatch: when reductions, decomposition, or the
// sampling plan fault or blow the budget, fall back to plain random
// sampling on the raw graph under the caller's original deadline. The
// fallback guarantees at least one completed source, so a finite (if
// coarse) estimate always comes back.
EstimateResult degraded_fallback(const CsrGraph& g,
                                 const EstimateOptions& opts,
                                 const CancelToken& token, ExecPhase phase,
                                 const Timer& total) {
  BRICS_COUNTER(c_degraded, "exec.degraded_runs");
  BRICS_COUNTER_ADD(c_degraded, 1);
  EstimateResult res = estimate_random_sampling_budgeted(g, opts, token);
  res.degraded = true;
  res.cut_phase = phase;
  res.times.total_s = total.seconds();
  res.times.normalize();
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

}  // namespace

EstimateResult estimate_brics(const CsrGraph& g,
                              const EstimateOptions& opts) {
  BRICS_CHECK_MSG(g.num_nodes() >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  BRICS_CHECK_MSG(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << opts.sample_rate);
  Timer total;
  CancelToken token(opts.budget.timeout_ms);

  double reduce_s = 0.0;
  std::optional<ReducedGraph> rg;
  try {
    PhaseScope phase_reduce("reduce", reduce_s);
    rg.emplace(reduce(g, opts.reduce));
    if (token.poll()) throw BudgetExceeded(ExecPhase::kReduce);
  } catch (const std::exception&) {
    return degraded_fallback(g, opts, token, ExecPhase::kReduce, total);
  }

  // Everything below degrades instead of aborting: a budget blow-out in a
  // phase that cannot produce partial results surfaces as BudgetExceeded,
  // any other fault (fail points, violated invariants) is mapped to the
  // phase it interrupted; both fall back to plain sampling on g.
  ExecPhase phase = ExecPhase::kBcc;
  try {
    EstimateResult res =
        estimate_on_reduction_budgeted(*rg, opts, token, &phase);
    res.times.reduce_s = reduce_s;
    res.times.total_s = total.seconds();
    res.times.normalize();
    record_exec_metrics(res);
    record_phase_metrics(res.times);
    return res;
  } catch (const BudgetExceeded& e) {
    BRICS_COUNTER(c_cuts, "exec.budget_cuts");
    BRICS_COUNTER_ADD(c_cuts, 1);
    return degraded_fallback(g, opts, token, e.phase(), total);
  } catch (const std::exception&) {
    return degraded_fallback(g, opts, token, phase, total);
  }
}

EstimateResult estimate_on_reduction(const ReducedGraph& rg,
                                     const EstimateOptions& opts) {
  CancelToken token(opts.budget.timeout_ms);
  return estimate_on_reduction_budgeted(rg, opts, token, nullptr);
}

EstimateResult estimate_on_reduction_budgeted(const ReducedGraph& rg,
                                              const EstimateOptions& opts,
                                              const CancelToken& token,
                                              ExecPhase* phase_out) {
  const NodeId n = rg.ledger.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK(rg.graph.num_nodes() == n);
  Timer total;
  BRICS_SPAN(sp_estimate, "estimate.brics");
  auto set_phase = [&](ExecPhase p) {
    if (phase_out) *phase_out = p;
  };
  EstimateResult res;
  res.farness.assign(n, 0.0);
  res.exact.assign(n, 0);
  res.reduce_stats = rg.stats;

  // ---- Decompose (Algorithm 4, step 7). ----
  set_phase(ExecPhase::kBcc);
  std::optional<PhaseScope> phase_bcc;
  phase_bcc.emplace("bcc", res.times.bcc_s);
  BccResult bcc = biconnected_components(rg.graph, rg.present);
  BlockCutTree bct = build_bct(bcc, n);
  const BlockId nb = bcc.num_blocks();
  res.num_blocks = nb;

  // Ownership: each present node belongs to exactly one owner block — its
  // home block for non-cuts, the BCT parent block for cuts.
  std::vector<BlockId> owner(n, kInvalidBlock);
  for (NodeId v = 0; v < n; ++v) {
    if (!rg.present[v]) continue;
    const CutId c = bct.cut_of_node[v];
    owner[v] = c == kInvalidCut ? bcc.home_block(v) : bct.parent_block[c];
  }

  // Build per-block work units.
  std::vector<BlockWork> works(nb);
  for (BlockId b = 0; b < nb; ++b) {
    auto nodes = bcc.block_nodes(b);
    works[b].sub = induced_subgraph(rg.graph, nodes);
    works[b].owned.assign(nodes.size(), 0);
    for (NodeId lv = 0; lv < nodes.size(); ++lv) {
      const NodeId gv = works[b].sub.to_old[lv];
      if (bcc.is_cut(gv)) {
        works[b].cuts_local.push_back(lv);
      }
      if (owner[gv] == b) {
        works[b].owned[lv] = 1;
        ++works[b].own_mass;
      }
    }
    works[b].cut_count =
        static_cast<std::uint32_t>(works[b].cuts_local.size());
  }

  // Home every ledger record (and its removed nodes) to a block.
  std::vector<BlockId> virt_owner(n, kInvalidBlock);
  {
    auto order = rg.ledger.order();
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      if (!rg.ledger.record_active(i)) continue;
      const BlockId b = record_home(rg.ledger, bcc, order[i]);
      works[b].records.push_back(i);
      std::vector<NodeId> vs;
      append_record_virtuals(rg.ledger, order[i], vs);
      for (NodeId v : vs) {
        virt_owner[v] = b;
        works[b].virtuals.push_back(v);
      }
      works[b].own_mass += vs.size();
    }
  }
  phase_bcc.reset();

  // The decomposition yields no reusable partial estimate, so a deadline
  // that fires here surfaces as BudgetExceeded; estimate_brics catches it
  // and degrades to plain sampling on the raw graph.
  if (token.poll()) throw BudgetExceeded(ExecPhase::kBcc);

  // ---- Sampling plan (Algorithm 5, step 2). ----
  const double rate = opts.sample_rate;
  BRICS_CHECK_MSG(rate > 0.0 && rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << rate);
  const double k_total =
      std::ceil(rate * static_cast<double>(rg.num_present));
  for (BlockId b = 0; b < nb; ++b) {
    BlockWork& bw = works[b];
    const NodeId bn = static_cast<NodeId>(bw.sub.to_old.size());
    // Cut vertices are always sampled and count toward the block's quota.
    bw.samples_local = bw.cuts_local;
    const double share = k_total * static_cast<double>(bn) /
                         static_cast<double>(rg.num_present);
    NodeId want = static_cast<NodeId>(std::ceil(share));
    if (bw.cut_count == 0) want = std::max<NodeId>(want, 1);
    NodeId extra =
        want > bw.cut_count ? want - bw.cut_count : 0;
    std::vector<NodeId> non_cuts;
    non_cuts.reserve(bn - bw.cut_count);
    for (NodeId lv = 0; lv < bn; ++lv)
      if (!bcc.is_cut(bw.sub.to_old[lv])) non_cuts.push_back(lv);
    extra = std::min<NodeId>(extra, static_cast<NodeId>(non_cuts.size()));
    if (extra > 0) {
      Rng rng(opts.seed ^ mix64(b + 1));
      std::vector<NodeId> pick;
      if (opts.strategy == SampleStrategy::kDegreeWeighted) {
        std::vector<double> wts(non_cuts.size());
        for (std::size_t i = 0; i < non_cuts.size(); ++i)
          wts[i] = static_cast<double>(bw.sub.graph.degree(non_cuts[i]));
        pick = weighted_sample_without_replacement(wts, extra, rng);
      } else {
        pick = sample_without_replacement(
            static_cast<NodeId>(non_cuts.size()), extra, rng);
      }
      for (NodeId i : pick) bw.samples_local.push_back(non_cuts[i]);
    }
    bw.dsum_own.assign(bw.cut_count, 0);
    bw.dcc.assign(static_cast<std::size_t>(bw.cut_count) * bw.cut_count, 0);
    bw.ow.assign(bw.cut_count, 0);
    bw.od.assign(bw.cut_count, 0);
  }

  // Every block's mandatory prefix: its cut vertices (their traversals feed
  // the exact cross-block machinery and may never be shed), or one source
  // for a cut-less block (so every block retains an intra estimate). The
  // budget only ever sheds the optional remainder.
  auto mandatory_of = [&](const BlockWork& bw) -> NodeId {
    return bw.cut_count > 0 ? bw.cut_count
                            : std::min<NodeId>(
                                  1, static_cast<NodeId>(
                                         bw.samples_local.size()));
  };

  NodeId planned_total = 0, mandatory_total = 0;
  for (BlockId b = 0; b < nb; ++b) {
    planned_total += static_cast<NodeId>(works[b].samples_local.size());
    mandatory_total += mandatory_of(works[b]);
  }
  BRICS_COUNTER(c_planned, "plan.samples_planned");
  BRICS_COUNTER(c_mandatory, "plan.samples_mandatory");
  BRICS_COUNTER(c_shed, "plan.samples_shed");
  BRICS_COUNTER(c_completed, "plan.samples_completed");
  BRICS_COUNTER_ADD(c_planned, planned_total);
  BRICS_COUNTER_ADD(c_mandatory, mandatory_total);

  // ---- Source cap (RunBudget::max_sources). ----
  bool plan_capped = false;
  const NodeId cap = opts.budget.max_sources;
  if (cap > 0 && planned_total > cap) {
    // A cap below the mandatory work can't be honoured by trimming; the
    // caller degrades to plain capped sampling instead.
    if (cap < mandatory_total) {
      set_phase(ExecPhase::kPlan);
      throw BudgetExceeded(ExecPhase::kPlan);
    }
    plan_capped = true;
    BRICS_COUNTER_ADD(c_shed, planned_total - cap);
    // Shed optional samples round-robin from the back of each block's
    // pick list — deterministic, and spreads the loss across blocks.
    NodeId excess = planned_total - cap;
    while (excess > 0) {
      bool any = false;
      for (BlockId b = 0; b < nb && excess > 0; ++b) {
        BlockWork& bw = works[b];
        if (bw.samples_local.size() > mandatory_of(bw)) {
          bw.samples_local.pop_back();
          --excess;
          any = true;
        }
      }
      BRICS_CHECK_MSG(any, "source cap below shed-able sample count");
    }
  }

  // Flatten (block, sample) pairs for load-balanced parallel traversal,
  // mandatory tasks first so the deadline can only shed optional ones.
  std::vector<std::pair<BlockId, std::uint32_t>> tasks;
  for (BlockId b = 0; b < nb; ++b)
    for (std::uint32_t si = 0; si < mandatory_of(works[b]); ++si)
      tasks.emplace_back(b, si);
  const std::size_t mandatory_tasks = tasks.size();
  for (BlockId b = 0; b < nb; ++b)
    for (std::uint32_t si = mandatory_of(works[b]);
         si < works[b].samples_local.size(); ++si)
      tasks.emplace_back(b, si);

  std::vector<FarnessSum> intra_exact(n, 0);
  ThreadSums acc(n);       // over all of the block's samples
  ThreadSums acc_own(n);   // over samples owned by the block (exact terms)

  // ---- P1: sampled traversals inside each block (Algorithm 5 step 2). ----
  set_phase(ExecPhase::kTraverse);
  std::vector<std::uint8_t> completed(tasks.size(), 0);
  std::optional<PhaseScope> phase_traverse;
  phase_traverse.emplace("traverse", res.times.traverse_s);
#pragma omp parallel
  {
    TraversalWorkspace ws;
    GlobalResolveScratch scratch(n);
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t t = 0; t < static_cast<std::int64_t>(tasks.size());
         ++t) {
      const bool must = static_cast<std::size_t>(t) < mandatory_tasks;
      if (!must && token.poll()) continue;
      const auto [b, si] = tasks[static_cast<std::size_t>(t)];
      BlockWork& bw = works[b];
      const NodeId ls = bw.samples_local[si];
      const NodeId gs = bw.sub.to_old[ls];
      if (!sssp(bw.sub.graph, ls, ws, must ? nullptr : &token)) continue;
      completed[static_cast<std::size_t>(t)] = 1;
      std::span<const Dist> local = ws.dist();

      scratch.fill_block(bw, local);
      rg.ledger.resolve_subset(scratch.dist(), bw.records);

      const bool src_is_cut = si < bw.cut_count;
      const bool src_owned = owner[gs] == b;

      // Distance sums over the block's owned population (present+virtual).
      FarnessSum own_sum = 0;
      auto& accbuf = acc.local();
      auto& ownbuf = acc_own.local();
      for (NodeId lv = 0; lv < bw.sub.to_old.size(); ++lv) {
        const NodeId gv = bw.sub.to_old[lv];
        if (!bw.owned[lv]) continue;
        own_sum += local[lv];
        accbuf[gv] += local[lv];
        if (src_owned) ownbuf[gv] += local[lv];
      }
      for (NodeId gv : bw.virtuals) {
        const Dist d = scratch.dist()[gv];
        BRICS_CHECK_MSG(d != kInfDist, "unresolved virtual " << gv);
        own_sum += d;
        accbuf[gv] += d;
        if (src_owned) ownbuf[gv] += d;
      }
      if (src_owned) intra_exact[gs] = own_sum;  // d(gs, gs) = 0 included

      if (src_is_cut) {
        bw.dsum_own[si] = own_sum;
        for (std::uint32_t cj = 0; cj < bw.cut_count; ++cj)
          bw.dcc[static_cast<std::size_t>(si) * bw.cut_count + cj] =
              local[bw.cuts_local[cj]];
      }
      scratch.clear_block(bw);
    }
  }
  phase_traverse.reset();

  // ---- Degraded traversal: drop the samples that never finished. ----
  // Everything downstream (beta calibration, the intra-block rescaling,
  // the exact flags) keys off samples_local, so shrinking it to the
  // completed set *is* the rescaling-by-achieved-sample-count: each block's
  // intra estimator divides by its own (now smaller) sample count. The
  // mandatory prefix always completed, so cut data (dsum_own, dcc) is
  // intact and cuts stay a prefix of samples_local.
  std::size_t done_tasks = 0;
  for (std::uint8_t c : completed) done_tasks += c;
  const bool traverse_cut = done_tasks < tasks.size();
  if (traverse_cut) {
    std::vector<std::vector<NodeId>> kept(nb);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (!completed[t]) continue;
      const auto [b, si] = tasks[t];
      kept[b].push_back(works[b].samples_local[si]);
    }
    for (BlockId b = 0; b < nb; ++b)
      works[b].samples_local = std::move(kept[b]);
  }
  BRICS_COUNTER_ADD(c_completed, done_tasks);
  res.samples = static_cast<NodeId>(done_tasks);
  res.planned_samples = planned_total;
  res.achieved_sample_rate = opts.sample_rate *
                             static_cast<double>(done_tasks) /
                             static_cast<double>(planned_total);
  if (traverse_cut) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kTraverse;
  } else if (plan_capped) {
    res.degraded = true;
    res.cut_phase = ExecPhase::kPlan;
  }

  // ---- Tree DP over the BCT (Algorithm 6). ----
  std::optional<PhaseScope> phase_combine;
  phase_combine.emplace("combine", res.times.combine_s);
  std::vector<FarnessSum> down_w(bct.num_cuts(), 0),
      down_d(bct.num_cuts(), 0);
  std::vector<FarnessSum> sub_w(nb, 0), sub_d_at_p(nb, 0);
  std::vector<FarnessSum> comp_total(nb, 0);

  auto cut_slot = [&](const BlockWork& bw, CutId c) -> std::uint32_t {
    // Index of global cut c within bw.cuts_local.
    for (std::uint32_t i = 0; i < bw.cut_count; ++i)
      if (bct.cut_of_node[bw.sub.to_old[bw.cuts_local[i]]] == c) return i;
    BRICS_CHECK_MSG(false, "cut not found in block");
    return 0;
  };

  // Bottom-up (leaves to roots).
  for (auto it = bct.top_down.rbegin(); it != bct.top_down.rend(); ++it) {
    const BlockId b = *it;
    BlockWork& bw = works[b];
    const CutId p = bct.parent_cut[b];
    std::uint32_t pslot = 0;
    FarnessSum w = bw.own_mass, d_at_p = 0;
    if (p != kInvalidCut) {
      pslot = cut_slot(bw, p);
      d_at_p = bw.dsum_own[pslot];
    }
    for (std::uint32_t ci = 0; ci < bw.cut_count; ++ci) {
      const CutId c = bct.cut_of_node[bw.sub.to_old[bw.cuts_local[ci]]];
      if (c == p) continue;
      w += down_w[c];
      if (p != kInvalidCut)
        d_at_p += down_d[c] + down_w[c] * bw.cut_dist(pslot, ci);
    }
    sub_w[b] = w;
    sub_d_at_p[b] = d_at_p;
    if (p != kInvalidCut) {
      down_w[p] += w;
      down_d[p] += d_at_p;
    }
  }

  // Top-down: finalise (ow, od) per (block, cut) and hand each cut the
  // "everything above" carry for its child blocks.
  std::vector<FarnessSum> up_at_d(bct.num_cuts(), 0);
  for (BlockId b : bct.top_down) {
    BlockWork& bw = works[b];
    const CutId p = bct.parent_cut[b];
    if (p == kInvalidCut) {
      comp_total[b] = sub_w[b];
    } else {
      comp_total[b] = comp_total[bct.parent_block[p]];
    }
    for (std::uint32_t ci = 0; ci < bw.cut_count; ++ci) {
      const CutId c = bct.cut_of_node[bw.sub.to_old[bw.cuts_local[ci]]];
      if (c == p) {
        bw.ow[ci] = comp_total[b] - sub_w[b];
        bw.od[ci] = up_at_d[p] + (down_d[p] - sub_d_at_p[b]);
      } else {
        bw.ow[ci] = down_w[c];
        bw.od[ci] = down_d[c];
      }
    }
    // Per-block mass-conservation invariant.
    FarnessSum check = bw.own_mass;
    for (std::uint32_t ci = 0; ci < bw.cut_count; ++ci) check += bw.ow[ci];
    BRICS_CHECK_MSG(check == comp_total[b],
                    "BCT mass mismatch in block " << b);
    bw.od_total = 0;
    for (std::uint32_t ci = 0; ci < bw.cut_count; ++ci)
      bw.od_total += bw.od[ci];
    // Carry for children hanging below each cut of this block.
    for (std::uint32_t ci = 0; ci < bw.cut_count; ++ci) {
      const CutId c = bct.cut_of_node[bw.sub.to_old[bw.cuts_local[ci]]];
      if (bct.parent_block[c] != b) continue;  // carries flow to children
      FarnessSum d_here = bw.dsum_own[ci];
      for (std::uint32_t cj = 0; cj < bw.cut_count; ++cj) {
        if (cj == ci) continue;
        d_here += bw.ow[cj] * bw.cut_dist(ci, cj) + bw.od[cj];
      }
      up_at_d[c] = d_here;
    }
  }

  // ---- P2: cut re-traversals push exact cross-block contributions onto
  // every node of their block (Algorithm 5 step 3 / step 4 prep). ----
  std::vector<std::pair<BlockId, std::uint32_t>> cut_tasks;
  for (BlockId b = 0; b < nb; ++b)
    for (std::uint32_t ci = 0; ci < works[b].cut_count; ++ci)
      cut_tasks.emplace_back(b, ci);

  ThreadSums cross(n);
#pragma omp parallel
  {
    TraversalWorkspace ws;
    GlobalResolveScratch scratch(n);
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t t = 0;
         t < static_cast<std::int64_t>(cut_tasks.size()); ++t) {
      const auto [b, ci] = cut_tasks[static_cast<std::size_t>(t)];
      BlockWork& bw = works[b];
      if (bw.ow[ci] == 0) continue;  // nothing behind this cut
      const NodeId ls = bw.cuts_local[ci];
      sssp(bw.sub.graph, ls, ws);
      std::span<const Dist> local = ws.dist();
      scratch.fill_block(bw, local);
      rg.ledger.resolve_subset(scratch.dist(), bw.records);
      auto& buf = cross.local();
      for (NodeId lv = 0; lv < bw.sub.to_old.size(); ++lv)
        if (bw.owned[lv]) buf[bw.sub.to_old[lv]] += bw.ow[ci] * local[lv];
      for (NodeId gv : bw.virtuals)
        buf[gv] += bw.ow[ci] * scratch.dist()[gv];
      scratch.clear_block(bw);
    }
  }

  // ---- Finalise farness values (Algorithm 5 step 4). ----
  std::vector<FarnessSum> acc_sum = acc.merge();
  std::vector<FarnessSum> own_sum_v = acc_own.merge();
  std::vector<FarnessSum> cross_sum = cross.merge();

  // Sampled present nodes are exact; everyone else scales the intra part.
  std::vector<std::uint8_t> sampled(n, 0);
  for (BlockId b = 0; b < nb; ++b)
    for (NodeId ls : works[b].samples_local)
      sampled[works[b].sub.to_old[ls]] = 1;

  // Intra-block estimator for a non-sampled node v owned by block B:
  //   intra(v) = acc_own[v]                                  (exact terms)
  //            + beta_B * (T - 1 - |S_own|) * acc[v]/|S_all| (remainder)
  // where T is the owned population, S_own the owned samples (their
  // distances from v are known exactly), S_all every sample of the block.
  // The raw remainder (sample-mean distance x unknown-target count) is
  // biased: forced cut-vertex samples sit centrally and removed nodes
  // (chain tails, twins) sit farther than the sample mean. Sampled nodes
  // know their exact intra sums, so each block learns the multiplicative
  // correction beta_B that makes the remainder unbiased on its own samples.
  std::vector<double> beta(nb, 1.0);
  std::vector<NodeId> n_own_samples(nb, 0);
  for (BlockId b = 0; b < nb; ++b) {
    BlockWork& bw = works[b];
    for (NodeId ls : bw.samples_local)
      if (owner[bw.sub.to_old[ls]] == b) ++n_own_samples[b];
    const double ns_all = static_cast<double>(bw.samples_local.size());
    const double ns_own = static_cast<double>(n_own_samples[b]);
    if (ns_all < 2) continue;
    const double targets = static_cast<double>(bw.own_mass) - 1.0;
    // For a sampled owned node s, the unknown-target count is
    // targets - (ns_own - 1): the other owned samples are known exactly.
    const double unknown_s = targets - (ns_own - 1.0);
    if (unknown_s <= 0.0) continue;  // fully sampled block: no remainder
    double exact_rem = 0.0, raw_rem = 0.0;
    for (NodeId ls : bw.samples_local) {
      const NodeId gs = bw.sub.to_old[ls];
      if (owner[gs] != b) continue;
      exact_rem += static_cast<double>(intra_exact[gs]) -
                   static_cast<double>(own_sum_v[gs]);
      raw_rem += static_cast<double>(acc_sum[gs]) / (ns_all - 1.0) *
                 unknown_s;
    }
    if (raw_rem > 0.0 && exact_rem > 0.0) beta[b] = exact_rem / raw_rem;
  }

  for (NodeId v = 0; v < n; ++v) {
    const BlockId b = rg.present[v] ? owner[v] : virt_owner[v];
    BRICS_CHECK_MSG(b != kInvalidBlock, "node " << v << " has no owner");
    const BlockWork& bw = works[b];
    double intra;
    if (rg.present[v] && sampled[v]) {
      intra = static_cast<double>(intra_exact[v]);
      res.exact[v] = 1;
    } else {
      // Exact terms to owned samples plus the calibrated remainder.
      const double ns_all = static_cast<double>(bw.samples_local.size());
      const double ns_own = static_cast<double>(n_own_samples[b]);
      const double unknown =
          static_cast<double>(bw.own_mass) - 1.0 - ns_own;
      intra = static_cast<double>(own_sum_v[v]);
      if (ns_all > 0 && unknown > 0)
        intra += beta[b] * static_cast<double>(acc_sum[v]) / ns_all *
                 unknown;
    }
    res.farness[v] = intra + static_cast<double>(cross_sum[v]) +
                     static_cast<double>(bw.od_total);
  }
  refine_removed_estimates(rg.ledger, n, res.farness, res.exact);
  phase_combine.reset();
  res.times.total_s = total.seconds();
  res.times.normalize();
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

EstimateResult estimate_farness(const CsrGraph& g,
                                const EstimateOptions& opts) {
  return opts.use_bcc ? estimate_brics(g, opts)
                      : estimate_reduced_sampling(g, opts);
}

}  // namespace brics
