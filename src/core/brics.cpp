// BRICS estimator entry points, expressed as compositions of the pipeline
// stages in src/pipeline/ (docs/ARCHITECTURE.md):
//
//   estimate_brics:  Reduce -> Decompose -> Plan -> Traverse -> Aggregate
//
// The stages own all algorithmic content; this file owns the composition —
// phase accounting, the degraded escape hatch, and the public signatures.
#include "core/brics.hpp"

#include <optional>

#include "core/sampling.hpp"
#include "exec/errors.hpp"
#include "exec/recovery.hpp"
#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/context.hpp"
#include "pipeline/stages.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

// The degraded escape hatch: when reductions, decomposition, or the
// sampling plan fault or blow the budget, fall back to plain random
// sampling on the raw graph under the caller's original deadline. The
// fallback guarantees at least one completed source, so a finite (if
// coarse) estimate always comes back. A deadline during Traverse does NOT
// route here: the Aggregate stage finishes from the partial traversal
// results instead (see estimate_on_reduction_budgeted).
EstimateResult degraded_fallback(const CsrGraph& g,
                                 const EstimateOptions& opts,
                                 const CancelToken& token, ExecPhase phase,
                                 const Timer& total, Recovery* rec,
                                 const RecoveryStats& rstats) {
  BRICS_COUNTER(c_degraded, "exec.degraded_runs");
  BRICS_COUNTER_ADD(c_degraded, 1);
  EstimateResult res = estimate_random_sampling_budgeted(g, opts, token);
  res.degraded = true;
  res.cut_phase = phase;
  res.times.total_s = total.seconds();
  res.times.normalize();
  // Retry/quarantine counts accumulated before the fault stay on the
  // record even though the result came from the fallback path.
  res.recovery = rstats;
  if (rec != nullptr)
    rec->finalize(res.recovery);
  else
    res.recovery.cumulative_wall_s = res.times.total_s;
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

}  // namespace

EstimateResult estimate_brics(const CsrGraph& g,
                              const EstimateOptions& opts) {
  BRICS_CHECK_MSG(g.num_nodes() >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  BRICS_CHECK_MSG(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << opts.sample_rate);
  Timer total;
  CancelToken token(opts.budget.timeout_ms);
  PipelineContext ctx(g, opts, token);

  // Checkpoint/resume is an opt-in property of the whole composition: one
  // Recovery manager spans Reduce through Traverse, keyed to a hash of
  // (graph, options) so stale directories are rejected, not consumed.
  std::optional<Recovery> rec;
  if (!opts.recovery.checkpoint_dir.empty())
    rec.emplace(opts.recovery, recovery_config_hash(g, opts));
  Recovery* recp = rec ? &*rec : nullptr;

  std::optional<ReducedGraph> rg;
  try {
    if (recp != nullptr) rg = recp->load_reduced();
    if (!rg) {
      rg.emplace(ReduceStage{}.run(ctx));
      if (recp != nullptr) recp->save_reduced(*rg);
    }
  } catch (const std::exception&) {
    return degraded_fallback(g, opts, token, ExecPhase::kReduce, total,
                             recp, ctx.rstats());
  }

  // Everything below degrades instead of aborting: a budget blow-out in a
  // stage that cannot produce partial results surfaces as BudgetExceeded,
  // any other fault (fail points, violated invariants) is mapped to the
  // stage it interrupted; both fall back to plain sampling on g. A
  // deadline during Traverse never lands here — Aggregate finishes from
  // the partial traversal instead.
  ExecPhase phase = ExecPhase::kBcc;
  RecoveryStats rstats;
  try {
    EstimateResult res =
        estimate_on_reduction_budgeted(*rg, opts, token, &phase, recp,
                                       &rstats);
    res.times.reduce_s = ctx.times().reduce_s;
    res.times.total_s = total.seconds();
    res.times.normalize();
    if (recp == nullptr) res.recovery.cumulative_wall_s = res.times.total_s;
    record_exec_metrics(res);
    record_phase_metrics(res.times);
    return res;
  } catch (const BudgetExceeded& e) {
    BRICS_COUNTER(c_cuts, "exec.budget_cuts");
    BRICS_COUNTER_ADD(c_cuts, 1);
    return degraded_fallback(g, opts, token, e.phase(), total, recp,
                             rstats);
  } catch (const std::exception&) {
    return degraded_fallback(g, opts, token, phase, total, recp, rstats);
  }
}

EstimateResult estimate_on_reduction(const ReducedGraph& rg,
                                     const EstimateOptions& opts) {
  CancelToken token(opts.budget.timeout_ms);
  return estimate_on_reduction_budgeted(rg, opts, token, nullptr);
}

EstimateResult estimate_on_reduction_budgeted(const ReducedGraph& rg,
                                              const EstimateOptions& opts,
                                              const CancelToken& token,
                                              ExecPhase* phase_out,
                                              Recovery* rec,
                                              RecoveryStats* rstats_out) {
  const NodeId n = rg.ledger.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK(rg.graph.num_nodes() == n);
  Timer total;
  BRICS_SPAN(sp_estimate, "estimate.brics");

  PipelineContext ctx(rg.graph, opts, token);
  ctx.set_phase(ExecPhase::kBcc);
  ctx.mirror_phase(phase_out);
  ctx.set_recovery(rec);

  try {
    // Each stage boundary is load-or-compute-and-save: a valid segment
    // skips the stage entirely, anything else (no manager, fresh run,
    // rejected segment) recomputes and persists the result for the next
    // attempt. Decomposition and planning are deterministic in (graph,
    // options), so a partially-populated directory stays consistent.
    std::optional<Decomposition> dec;
    if (rec != nullptr) {
      Decomposition d;
      if (rec->load_decomposition(d, rg)) dec.emplace(std::move(d));
    }
    if (!dec) {
      dec.emplace(DecomposeStage{}.run(ctx, rg));
      if (rec != nullptr) rec->save_decomposition(*dec);
    }

    std::optional<SamplePlan> plan;
    if (rec != nullptr) {
      SamplePlan p;
      if (rec->load_plan(p, *dec)) plan.emplace(std::move(p));
    }
    if (!plan) {
      plan.emplace(PlanStage{}.run(ctx, *dec, rg.num_present));
      if (rec != nullptr) rec->save_plan(*plan);
    }

    const TraversalResults trav = TraverseStage{}.run(ctx, rg, *dec, *plan);
    EstimateResult res = AggregateStage{}.run(ctx, rg, *dec, *plan, trav);

    res.reduce_stats = rg.stats;
    res.times = ctx.times();
    res.times.total_s = total.seconds();
    res.times.normalize();
    res.recovery = ctx.rstats();
    if (rec != nullptr)
      rec->finalize(res.recovery);
    else
      res.recovery.cumulative_wall_s = res.times.total_s;
    if (rstats_out != nullptr) *rstats_out = res.recovery;
    record_exec_metrics(res);
    record_phase_metrics(res.times);
    return res;
  } catch (...) {
    // The retry/quarantine tallies survive the unwind so the fallback
    // path can report them.
    if (rstats_out != nullptr) *rstats_out = ctx.rstats();
    throw;
  }
}

EstimateResult estimate_farness(const CsrGraph& g,
                                const EstimateOptions& opts) {
  return opts.use_bcc ? estimate_brics(g, opts)
                      : estimate_reduced_sampling(g, opts);
}

}  // namespace brics
