// BRICS estimator entry points, expressed as compositions of the pipeline
// stages in src/pipeline/ (docs/ARCHITECTURE.md):
//
//   estimate_brics:  Reduce -> Decompose -> Plan -> Traverse -> Aggregate
//
// The stages own all algorithmic content; this file owns the composition —
// phase accounting, the degraded escape hatch, and the public signatures.
#include "core/brics.hpp"

#include <optional>

#include "core/sampling.hpp"
#include "exec/errors.hpp"
#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/context.hpp"
#include "pipeline/stages.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace brics {
namespace {

// The degraded escape hatch: when reductions, decomposition, or the
// sampling plan fault or blow the budget, fall back to plain random
// sampling on the raw graph under the caller's original deadline. The
// fallback guarantees at least one completed source, so a finite (if
// coarse) estimate always comes back. A deadline during Traverse does NOT
// route here: the Aggregate stage finishes from the partial traversal
// results instead (see estimate_on_reduction_budgeted).
EstimateResult degraded_fallback(const CsrGraph& g,
                                 const EstimateOptions& opts,
                                 const CancelToken& token, ExecPhase phase,
                                 const Timer& total) {
  BRICS_COUNTER(c_degraded, "exec.degraded_runs");
  BRICS_COUNTER_ADD(c_degraded, 1);
  EstimateResult res = estimate_random_sampling_budgeted(g, opts, token);
  res.degraded = true;
  res.cut_phase = phase;
  res.times.total_s = total.seconds();
  res.times.normalize();
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

}  // namespace

EstimateResult estimate_brics(const CsrGraph& g,
                              const EstimateOptions& opts) {
  BRICS_CHECK_MSG(g.num_nodes() >= 1, "empty graph");
  BRICS_CHECK_MSG(is_connected(g),
                  "estimators require a connected graph "
                  "(preprocess with make_connected / largest_component)");
  BRICS_CHECK_MSG(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0,
                  "sample_rate must be in (0, 1], got " << opts.sample_rate);
  Timer total;
  CancelToken token(opts.budget.timeout_ms);
  PipelineContext ctx(g, opts, token);

  std::optional<ReducedGraph> rg;
  try {
    rg.emplace(ReduceStage{}.run(ctx));
  } catch (const std::exception&) {
    return degraded_fallback(g, opts, token, ExecPhase::kReduce, total);
  }

  // Everything below degrades instead of aborting: a budget blow-out in a
  // stage that cannot produce partial results surfaces as BudgetExceeded,
  // any other fault (fail points, violated invariants) is mapped to the
  // stage it interrupted; both fall back to plain sampling on g. A
  // deadline during Traverse never lands here — Aggregate finishes from
  // the partial traversal instead.
  ExecPhase phase = ExecPhase::kBcc;
  try {
    EstimateResult res =
        estimate_on_reduction_budgeted(*rg, opts, token, &phase);
    res.times.reduce_s = ctx.times().reduce_s;
    res.times.total_s = total.seconds();
    res.times.normalize();
    record_exec_metrics(res);
    record_phase_metrics(res.times);
    return res;
  } catch (const BudgetExceeded& e) {
    BRICS_COUNTER(c_cuts, "exec.budget_cuts");
    BRICS_COUNTER_ADD(c_cuts, 1);
    return degraded_fallback(g, opts, token, e.phase(), total);
  } catch (const std::exception&) {
    return degraded_fallback(g, opts, token, phase, total);
  }
}

EstimateResult estimate_on_reduction(const ReducedGraph& rg,
                                     const EstimateOptions& opts) {
  CancelToken token(opts.budget.timeout_ms);
  return estimate_on_reduction_budgeted(rg, opts, token, nullptr);
}

EstimateResult estimate_on_reduction_budgeted(const ReducedGraph& rg,
                                              const EstimateOptions& opts,
                                              const CancelToken& token,
                                              ExecPhase* phase_out) {
  const NodeId n = rg.ledger.num_nodes();
  BRICS_CHECK_MSG(n >= 1, "empty graph");
  BRICS_CHECK(rg.graph.num_nodes() == n);
  Timer total;
  BRICS_SPAN(sp_estimate, "estimate.brics");

  PipelineContext ctx(rg.graph, opts, token);
  ctx.set_phase(ExecPhase::kBcc);
  ctx.mirror_phase(phase_out);

  const Decomposition dec = DecomposeStage{}.run(ctx, rg);
  const SamplePlan plan = PlanStage{}.run(ctx, dec, rg.num_present);
  const TraversalResults trav = TraverseStage{}.run(ctx, rg, dec, plan);
  EstimateResult res = AggregateStage{}.run(ctx, rg, dec, plan, trav);

  res.reduce_stats = rg.stats;
  res.times = ctx.times();
  res.times.total_s = total.seconds();
  res.times.normalize();
  record_exec_metrics(res);
  record_phase_metrics(res.times);
  return res;
}

EstimateResult estimate_farness(const CsrGraph& g,
                                const EstimateOptions& opts) {
  return opts.use_bcc ? estimate_brics(g, opts)
                      : estimate_reduced_sampling(g, opts);
}

}  // namespace brics
