#include "core/farness.hpp"

#include "exec/budget.hpp"
#include "pipeline/kernels.hpp"
#include "traverse/bfs.hpp"
#include "traverse/multi_source.hpp"
#include "util/check.hpp"

namespace brics {

std::vector<FarnessSum> exact_farness(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<FarnessSum> out(n, 0);
  std::vector<NodeId> sources(n);
  for (NodeId v = 0; v < n; ++v) sources[v] = v;
  // Exact farness is the all-mandatory composition of the flat traversal
  // driver: every source must complete, so the token is never consulted.
  CancelToken token;
  std::vector<std::uint8_t> completed;
  traverse_flat(g, sources, /*mandatory=*/sources.size(), token,
                KernelChoice::kAuto, completed,
                [&](std::size_t i, std::span<const Dist> dist) {
                  out[sources[i]] = aggregate_distances(dist).sum;
                });
  return out;
}

FarnessSum exact_farness_of(const CsrGraph& g, NodeId v) {
  BRICS_CHECK(v < g.num_nodes());
  TraversalWorkspace ws;
  sssp(g, v, ws);
  return aggregate_distances(ws.dist()).sum;
}

}  // namespace brics
