// Common types for all farness estimators.
#pragma once

#include <cstdint>
#include <vector>

#include "bcc/bcc.hpp"
#include "exec/budget.hpp"
#include "exec/resilience.hpp"
#include "graph/types.hpp"
#include "reduce/reducer.hpp"
#include "util/timer.hpp"

namespace brics {

/// Which centrality the pipeline computes. The staged substrate (Reduce →
/// Decompose → Plan → Traverse → Aggregate) is measure-agnostic; the
/// measure selects the reduction subset that preserves the quantity (path
/// lengths for farness, path counts for betweenness), the traversal kernel
/// payload (distance sums vs dependency accumulation), and the aggregate
/// resolvers (ledger closed forms vs BCT distance DP). docs/ARCHITECTURE.md
/// documents the Measure abstraction and the ledger resolver contract.
enum class Measure : std::uint8_t {
  kFarness,      ///< Σ_w d(v, w) — the paper's workload
  kBetweenness,  ///< Brandes dependency sums Σ_{s≠v≠t} σ_st(v)/σ_st
};

inline const char* to_string(Measure m) {
  switch (m) {
    case Measure::kFarness: return "farness";
    case Measure::kBetweenness: return "betweenness";
  }
  return "?";
}

/// How traversal sources are drawn from the (block's) population.
enum class SampleStrategy {
  kUniform,         ///< the paper's choice: uniform without replacement
  kDegreeWeighted,  ///< probability proportional to degree (pivot-style)
};

/// Which traversal kernel the Traverse stage runs (docs/ARCHITECTURE.md).
/// kAuto picks per block: small multi-source blocks batch their sources on
/// one thread (kBatched), larger blocks keep source-level parallelism with
/// the engine matching the block's weights (kBfs / kDial). A forced kBfs on
/// a weighted graph is upgraded to kDial — BFS distances would be wrong.
enum class KernelChoice : std::uint8_t {
  kAuto,     ///< per-block size/degree heuristic (default)
  kBfs,      ///< frontier BFS, one parallel task per source
  kDial,     ///< Dial bucket SSSP, one parallel task per source
  kBatched,  ///< all of a block's sources sequentially on one thread
};

inline const char* to_string(KernelChoice k) {
  switch (k) {
    case KernelChoice::kAuto: return "auto";
    case KernelChoice::kBfs: return "bfs";
    case KernelChoice::kDial: return "dial";
    case KernelChoice::kBatched: return "batched";
  }
  return "?";
}

/// Estimator configuration. The paper's configurations map to:
///   Random sampling (Alg. 1): estimate_random_sampling()
///   C+R:        reduce{identical=false}, use_bcc=false
///   I+C+R:      reduce{all true},        use_bcc=false
///   Cumulative: reduce{all true},        use_bcc=true  (full BRICS)
struct EstimateOptions {
  Measure measure = Measure::kFarness;  ///< which centrality to estimate
  double sample_rate = 0.2;   ///< fraction of (reduced-graph) nodes sampled
  std::uint64_t seed = 1;     ///< sampling RNG seed
  ReduceOptions reduce;       ///< which reductions to apply
  bool use_bcc = true;        ///< decompose into biconnected blocks
  SampleStrategy strategy = SampleStrategy::kUniform;
  /// Traversal kernel for the Traverse stage; kAuto selects per block.
  KernelChoice kernel = KernelChoice::kAuto;
  /// Adjacency backend the pipeline keeps its working graphs in. kCompact
  /// holds the reduced graph and every block subgraph as delta+varint rows
  /// (~40-60 % of plain CSR bytes on real graphs); all kernels decode
  /// through the same iteration templates, so results are bit-identical to
  /// kPlain at every sampling rate.
  AdjacencyStorage storage = AdjacencyStorage::kPlain;
  /// Wall-clock / source-count limits. When a non-default budget cuts a
  /// run, the estimators degrade instead of abort (docs/ROBUSTNESS.md):
  /// the result is built from the sources completed in time and flagged
  /// below. The default budget is unlimited and changes nothing.
  RunBudget budget;
  /// Bounded retry of faulted traversal tasks before quarantine
  /// (docs/ROBUSTNESS.md); the default absorbs two transient faults.
  RetryPolicy retry;
  /// Checkpoint/resume (exec/recovery.hpp). Disabled by default; with a
  /// checkpoint_dir every stage boundary persists its artifact, and
  /// resume=true continues from whatever segments survive.
  RecoveryOptions recovery;
};

/// Estimator output. farness[v] approximates sum_{w != v} d(v, w); entries
/// flagged in `exact` carry the exact value (sampled sources, and with BCC
/// the cross-block part of every node is exact as well).
struct EstimateResult {
  Measure measure = Measure::kFarness;  ///< what `farness` holds
  /// Per-node centrality values. For Measure::kFarness, approximate
  /// sum_{w != v} d(v, w); for Measure::kBetweenness, approximate Brandes
  /// dependency sums over ordered pairs (no normalization). The field name
  /// predates the Measure abstraction and is kept for API stability.
  std::vector<double> farness;
  std::vector<std::uint8_t> exact;
  NodeId samples = 0;        ///< traversal sources actually completed
  PhaseTimes times;
  ReduceStats reduce_stats;  ///< zero-initialised when no reduction ran
  BlockId num_blocks = 0;    ///< 0 when use_bcc == false

  // Degradation report (docs/ROBUSTNESS.md). A degraded result is still a
  // valid estimate — coarser, per the rescaled-sample error model — built
  // from whatever completed before the budget expired or a phase faulted.
  bool degraded = false;                    ///< some phase was cut/replaced
  ExecPhase cut_phase = ExecPhase::kNone;   ///< where the cut happened
  NodeId planned_samples = 0;               ///< sources the plan called for
  /// Effective sample rate achieved: opts.sample_rate scaled by
  /// samples / planned_samples (equals opts.sample_rate when not degraded).
  double achieved_sample_rate = 0.0;

  /// Resilience accounting (retries, quarantines, checkpoints, attempt
  /// number, cumulative wall across attempts); zeroed apart from
  /// cumulative_wall_s == times.total_s when the machinery is idle.
  RecoveryStats recovery;
};

}  // namespace brics
