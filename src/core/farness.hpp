// Exact farness centrality: one SSSP per node, parallel over sources.
// O(n (m + n)) — the ground truth every estimator is measured against.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

/// Exact farness of every node of a connected graph.
std::vector<FarnessSum> exact_farness(const CsrGraph& g);

/// Exact farness of a single node (one traversal).
FarnessSum exact_farness_of(const CsrGraph& g, NodeId v);

}  // namespace brics
