// Sampling-based farness estimators without biconnected decomposition.
//
//   estimate_random_sampling — the paper's baseline (Algorithm 1): BFS from
//     k uniform nodes of the input graph; sampled nodes exact, the rest
//     scaled by (n-1)/k. (The paper's pseudo-code omits the scale factor;
//     it is required for the reported Quality ≈ 1 values — see DESIGN §3.6.)
//
//   estimate_reduced_sampling — the same estimator run on the reduced graph
//     (paper configurations C+R and I+C+R): reductions shrink the traversal
//     workload, the ledger reconstructs distances to removed nodes, so each
//     sampled source still yields its exact farness over the FULL graph.
#pragma once

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"

namespace brics {

/// Algorithm 1 on the raw input graph. Ignores opts.reduce / opts.use_bcc.
EstimateResult estimate_random_sampling(const CsrGraph& g,
                                        const EstimateOptions& opts);

/// Reduce-then-sample without block decomposition. If the reduction faults
/// or blows opts.budget, degrades to plain sampling on the unreduced graph
/// (result flagged degraded, cut_phase = kReduce).
EstimateResult estimate_reduced_sampling(const CsrGraph& g,
                                         const EstimateOptions& opts);

/// As estimate_random_sampling but cooperating with an existing cancel
/// token: the degraded fall-back paths route here so the caller's original
/// deadline keeps applying. At least one source always completes, even on
/// an already-cancelled token, so a finite estimate always exists.
EstimateResult estimate_random_sampling_budgeted(const CsrGraph& g,
                                                 const EstimateOptions& opts,
                                                 const CancelToken& token);

}  // namespace brics
