// Sampling-based farness estimators without biconnected decomposition.
//
//   estimate_random_sampling — the paper's baseline (Algorithm 1): BFS from
//     k uniform nodes of the input graph; sampled nodes exact, the rest
//     scaled by (n-1)/k. (The paper's pseudo-code omits the scale factor;
//     it is required for the reported Quality ≈ 1 values — see DESIGN §3.6.)
//
//   estimate_reduced_sampling — the same estimator run on the reduced graph
//     (paper configurations C+R and I+C+R): reductions shrink the traversal
//     workload, the ledger reconstructs distances to removed nodes, so each
//     sampled source still yields its exact farness over the FULL graph.
#pragma once

#include <span>
#include <vector>

#include "core/estimate.hpp"
#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace brics {

/// Draw k distinct traversal sources from `candidates` according to
/// `strategy`: uniform without replacement, or degree-weighted with each
/// candidate's degree taken from `g` (Efraimidis–Spirakis). This is the one
/// place sources are picked — the Plan stage calls it per block over the
/// block's non-cut vertices, the flat sampling estimators over the whole
/// (present) node set — so every estimator shares one RNG discipline:
/// exactly one sampler invocation on `rng`, results in candidate order.
inline std::vector<NodeId> pick_sample_sources(
    const CsrGraph& g, std::span<const NodeId> candidates, NodeId k,
    SampleStrategy strategy, Rng& rng) {
  std::vector<NodeId> out;
  if (k == 0 || candidates.empty()) return out;
  std::vector<NodeId> idx;
  if (strategy == SampleStrategy::kDegreeWeighted) {
    std::vector<double> wts(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
      wts[i] = static_cast<double>(g.degree(candidates[i]));
    idx = weighted_sample_without_replacement(wts, k, rng);
  } else {
    idx = sample_without_replacement(
        static_cast<NodeId>(candidates.size()), k, rng);
  }
  out.reserve(idx.size());
  for (NodeId i : idx) out.push_back(candidates[i]);
  return out;
}

/// Algorithm 1 on the raw input graph. Ignores opts.reduce / opts.use_bcc.
EstimateResult estimate_random_sampling(const CsrGraph& g,
                                        const EstimateOptions& opts);

/// Reduce-then-sample without block decomposition. If the reduction faults
/// or blows opts.budget, degrades to plain sampling on the unreduced graph
/// (result flagged degraded, cut_phase = kReduce).
EstimateResult estimate_reduced_sampling(const CsrGraph& g,
                                         const EstimateOptions& opts);

/// As estimate_random_sampling but cooperating with an existing cancel
/// token: the degraded fall-back paths route here so the caller's original
/// deadline keeps applying. At least one source always completes, even on
/// an already-cancelled token, so a finite estimate always exists.
EstimateResult estimate_random_sampling_budgeted(const CsrGraph& g,
                                                 const EstimateOptions& opts,
                                                 const CancelToken& token);

}  // namespace brics
