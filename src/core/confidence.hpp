// Adaptive error estimation for the sampling estimator — the facility the
// paper attributes to Cohen et al. ("provides an adaptive error estimator")
// and contrasts against its own fixed-rate design. Alongside each farness
// estimate we report a per-node standard error derived from the sample
// variance of the observed distances, with the finite-population correction
// (sources are drawn without replacement).
//
// For a non-sampled node v with k observed distances d_1..d_k of mean m and
// sample variance s²:
//   farness_hat(v) = (n-1) m
//   se(v)          = (n-1) * sqrt(s²/k) * sqrt((n-1-k)/(n-2))
// Sampled nodes are exact (se = 0). A z-multiplier turns se into a
// confidence half-width; the suite checks empirical coverage.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace brics {

struct ConfidenceOptions {
  double sample_rate = 0.2;
  std::uint64_t seed = 1;
};

struct ConfidenceResult {
  std::vector<double> farness;  ///< point estimates ((n-1) * sample mean)
  std::vector<double> stderr_;  ///< per-node standard error (0 for exact)
  std::vector<std::uint8_t> exact;
  NodeId samples = 0;

  /// Confidence half-width at the given z (1.96 ~ 95 % for normal error).
  double half_width(NodeId v, double z = 1.96) const {
    return z * stderr_[v];
  }
};

/// Random-sampling farness estimation with per-node error estimates.
ConfidenceResult estimate_with_confidence(const CsrGraph& g,
                                          const ConfidenceOptions& opts);

}  // namespace brics
