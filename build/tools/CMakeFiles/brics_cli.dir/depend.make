# Empty dependencies file for brics_cli.
# This may be replaced when dependencies are built.
