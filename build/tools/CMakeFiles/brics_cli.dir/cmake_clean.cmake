file(REMOVE_RECURSE
  "CMakeFiles/brics_cli.dir/brics_cli.cpp.o"
  "CMakeFiles/brics_cli.dir/brics_cli.cpp.o.d"
  "brics"
  "brics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
