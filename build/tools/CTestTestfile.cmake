# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_datasets "/root/repo/build/tools/brics" "datasets")
set_tests_properties(cli_datasets PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/brics" "stats" "@road-rural" "--scale" "0.05")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate "/root/repo/build/tools/brics" "estimate" "@web-copy-a" "--scale" "0.05" "--rate" "0.3")
set_tests_properties(cli_estimate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate_cr "/root/repo/build/tools/brics" "estimate" "@com-part-a" "--scale" "0.05" "--config" "cr")
set_tests_properties(cli_estimate_cr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_topk "/root/repo/build/tools/brics" "topk" "@soc-rmat" "--scale" "0.05" "--k" "5")
set_tests_properties(cli_topk PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate "/root/repo/build/tools/brics" "generate" "road-rural" "--scale" "0.05" "--out" "/root/repo/build/gen_test.txt")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/brics" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_dataset "/root/repo/build/tools/brics" "stats" "@nope")
set_tests_properties(cli_unknown_dataset PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_harmonic "/root/repo/build/tools/brics" "harmonic" "@soc-rmat" "--scale" "0.05" "--rate" "0.5")
set_tests_properties(cli_harmonic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_distance "/root/repo/build/tools/brics" "distance" "@road-rural" "--scale" "0.05" "--s" "1" "--t" "40")
set_tests_properties(cli_distance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_improve "/root/repo/build/tools/brics" "improve" "@road-rural" "--scale" "0.05" "--node" "7" "--k" "2" "--pool" "50")
set_tests_properties(cli_improve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
