file(REMOVE_RECURSE
  "CMakeFiles/brics_util.dir/rng.cpp.o"
  "CMakeFiles/brics_util.dir/rng.cpp.o.d"
  "CMakeFiles/brics_util.dir/stats.cpp.o"
  "CMakeFiles/brics_util.dir/stats.cpp.o.d"
  "libbrics_util.a"
  "libbrics_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
