# Empty dependencies file for brics_util.
# This may be replaced when dependencies are built.
