file(REMOVE_RECURSE
  "libbrics_util.a"
)
