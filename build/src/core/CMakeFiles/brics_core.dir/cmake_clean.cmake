file(REMOVE_RECURSE
  "CMakeFiles/brics_core.dir/brics.cpp.o"
  "CMakeFiles/brics_core.dir/brics.cpp.o.d"
  "CMakeFiles/brics_core.dir/confidence.cpp.o"
  "CMakeFiles/brics_core.dir/confidence.cpp.o.d"
  "CMakeFiles/brics_core.dir/farness.cpp.o"
  "CMakeFiles/brics_core.dir/farness.cpp.o.d"
  "CMakeFiles/brics_core.dir/pivoting.cpp.o"
  "CMakeFiles/brics_core.dir/pivoting.cpp.o.d"
  "CMakeFiles/brics_core.dir/postprocess.cpp.o"
  "CMakeFiles/brics_core.dir/postprocess.cpp.o.d"
  "CMakeFiles/brics_core.dir/quality.cpp.o"
  "CMakeFiles/brics_core.dir/quality.cpp.o.d"
  "CMakeFiles/brics_core.dir/sampling.cpp.o"
  "CMakeFiles/brics_core.dir/sampling.cpp.o.d"
  "libbrics_core.a"
  "libbrics_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
