file(REMOVE_RECURSE
  "libbrics_core.a"
)
