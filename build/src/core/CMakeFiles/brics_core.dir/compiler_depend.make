# Empty compiler generated dependencies file for brics_core.
# This may be replaced when dependencies are built.
