
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brics.cpp" "src/core/CMakeFiles/brics_core.dir/brics.cpp.o" "gcc" "src/core/CMakeFiles/brics_core.dir/brics.cpp.o.d"
  "/root/repo/src/core/confidence.cpp" "src/core/CMakeFiles/brics_core.dir/confidence.cpp.o" "gcc" "src/core/CMakeFiles/brics_core.dir/confidence.cpp.o.d"
  "/root/repo/src/core/farness.cpp" "src/core/CMakeFiles/brics_core.dir/farness.cpp.o" "gcc" "src/core/CMakeFiles/brics_core.dir/farness.cpp.o.d"
  "/root/repo/src/core/pivoting.cpp" "src/core/CMakeFiles/brics_core.dir/pivoting.cpp.o" "gcc" "src/core/CMakeFiles/brics_core.dir/pivoting.cpp.o.d"
  "/root/repo/src/core/postprocess.cpp" "src/core/CMakeFiles/brics_core.dir/postprocess.cpp.o" "gcc" "src/core/CMakeFiles/brics_core.dir/postprocess.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/core/CMakeFiles/brics_core.dir/quality.cpp.o" "gcc" "src/core/CMakeFiles/brics_core.dir/quality.cpp.o.d"
  "/root/repo/src/core/sampling.cpp" "src/core/CMakeFiles/brics_core.dir/sampling.cpp.o" "gcc" "src/core/CMakeFiles/brics_core.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/brics_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traverse/CMakeFiles/brics_traverse.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/brics_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/bcc/CMakeFiles/brics_bcc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/brics_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
