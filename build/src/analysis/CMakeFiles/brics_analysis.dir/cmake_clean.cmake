file(REMOVE_RECURSE
  "CMakeFiles/brics_analysis.dir/analysis.cpp.o"
  "CMakeFiles/brics_analysis.dir/analysis.cpp.o.d"
  "libbrics_analysis.a"
  "libbrics_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
