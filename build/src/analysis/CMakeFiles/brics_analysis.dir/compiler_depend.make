# Empty compiler generated dependencies file for brics_analysis.
# This may be replaced when dependencies are built.
