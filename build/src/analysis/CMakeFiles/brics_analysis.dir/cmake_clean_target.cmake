file(REMOVE_RECURSE
  "libbrics_analysis.a"
)
