file(REMOVE_RECURSE
  "libbrics_bcc.a"
)
