# Empty dependencies file for brics_bcc.
# This may be replaced when dependencies are built.
