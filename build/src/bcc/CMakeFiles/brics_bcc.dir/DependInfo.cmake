
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bcc/bcc.cpp" "src/bcc/CMakeFiles/brics_bcc.dir/bcc.cpp.o" "gcc" "src/bcc/CMakeFiles/brics_bcc.dir/bcc.cpp.o.d"
  "/root/repo/src/bcc/bct.cpp" "src/bcc/CMakeFiles/brics_bcc.dir/bct.cpp.o" "gcc" "src/bcc/CMakeFiles/brics_bcc.dir/bct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/brics_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/brics_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
