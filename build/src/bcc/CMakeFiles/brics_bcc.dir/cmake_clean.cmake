file(REMOVE_RECURSE
  "CMakeFiles/brics_bcc.dir/bcc.cpp.o"
  "CMakeFiles/brics_bcc.dir/bcc.cpp.o.d"
  "CMakeFiles/brics_bcc.dir/bct.cpp.o"
  "CMakeFiles/brics_bcc.dir/bct.cpp.o.d"
  "libbrics_bcc.a"
  "libbrics_bcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_bcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
