# CMake generated Testfile for 
# Source directory: /root/repo/src/bcc
# Build directory: /root/repo/build/src/bcc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
