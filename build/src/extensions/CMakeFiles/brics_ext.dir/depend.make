# Empty dependencies file for brics_ext.
# This may be replaced when dependencies are built.
