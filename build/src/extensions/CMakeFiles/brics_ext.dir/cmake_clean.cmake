file(REMOVE_RECURSE
  "CMakeFiles/brics_ext.dir/dynamic.cpp.o"
  "CMakeFiles/brics_ext.dir/dynamic.cpp.o.d"
  "CMakeFiles/brics_ext.dir/improve.cpp.o"
  "CMakeFiles/brics_ext.dir/improve.cpp.o.d"
  "CMakeFiles/brics_ext.dir/topk.cpp.o"
  "CMakeFiles/brics_ext.dir/topk.cpp.o.d"
  "libbrics_ext.a"
  "libbrics_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
