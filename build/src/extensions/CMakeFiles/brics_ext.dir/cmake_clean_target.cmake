file(REMOVE_RECURSE
  "libbrics_ext.a"
)
