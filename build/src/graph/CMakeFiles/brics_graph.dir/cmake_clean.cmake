file(REMOVE_RECURSE
  "CMakeFiles/brics_graph.dir/connectivity.cpp.o"
  "CMakeFiles/brics_graph.dir/connectivity.cpp.o.d"
  "CMakeFiles/brics_graph.dir/csr_graph.cpp.o"
  "CMakeFiles/brics_graph.dir/csr_graph.cpp.o.d"
  "CMakeFiles/brics_graph.dir/graph_io.cpp.o"
  "CMakeFiles/brics_graph.dir/graph_io.cpp.o.d"
  "CMakeFiles/brics_graph.dir/metis_io.cpp.o"
  "CMakeFiles/brics_graph.dir/metis_io.cpp.o.d"
  "CMakeFiles/brics_graph.dir/reorder.cpp.o"
  "CMakeFiles/brics_graph.dir/reorder.cpp.o.d"
  "libbrics_graph.a"
  "libbrics_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
