file(REMOVE_RECURSE
  "libbrics_graph.a"
)
