# Empty compiler generated dependencies file for brics_graph.
# This may be replaced when dependencies are built.
