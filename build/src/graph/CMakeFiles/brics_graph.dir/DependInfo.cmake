
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cpp" "src/graph/CMakeFiles/brics_graph.dir/connectivity.cpp.o" "gcc" "src/graph/CMakeFiles/brics_graph.dir/connectivity.cpp.o.d"
  "/root/repo/src/graph/csr_graph.cpp" "src/graph/CMakeFiles/brics_graph.dir/csr_graph.cpp.o" "gcc" "src/graph/CMakeFiles/brics_graph.dir/csr_graph.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/graph/CMakeFiles/brics_graph.dir/graph_io.cpp.o" "gcc" "src/graph/CMakeFiles/brics_graph.dir/graph_io.cpp.o.d"
  "/root/repo/src/graph/metis_io.cpp" "src/graph/CMakeFiles/brics_graph.dir/metis_io.cpp.o" "gcc" "src/graph/CMakeFiles/brics_graph.dir/metis_io.cpp.o.d"
  "/root/repo/src/graph/reorder.cpp" "src/graph/CMakeFiles/brics_graph.dir/reorder.cpp.o" "gcc" "src/graph/CMakeFiles/brics_graph.dir/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/brics_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
