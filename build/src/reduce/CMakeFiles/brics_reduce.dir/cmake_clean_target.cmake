file(REMOVE_RECURSE
  "libbrics_reduce.a"
)
