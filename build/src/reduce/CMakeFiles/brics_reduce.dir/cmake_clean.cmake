file(REMOVE_RECURSE
  "CMakeFiles/brics_reduce.dir/chains.cpp.o"
  "CMakeFiles/brics_reduce.dir/chains.cpp.o.d"
  "CMakeFiles/brics_reduce.dir/identical.cpp.o"
  "CMakeFiles/brics_reduce.dir/identical.cpp.o.d"
  "CMakeFiles/brics_reduce.dir/ledger.cpp.o"
  "CMakeFiles/brics_reduce.dir/ledger.cpp.o.d"
  "CMakeFiles/brics_reduce.dir/reducer.cpp.o"
  "CMakeFiles/brics_reduce.dir/reducer.cpp.o.d"
  "CMakeFiles/brics_reduce.dir/redundant.cpp.o"
  "CMakeFiles/brics_reduce.dir/redundant.cpp.o.d"
  "CMakeFiles/brics_reduce.dir/serialize.cpp.o"
  "CMakeFiles/brics_reduce.dir/serialize.cpp.o.d"
  "libbrics_reduce.a"
  "libbrics_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
