# Empty compiler generated dependencies file for brics_reduce.
# This may be replaced when dependencies are built.
