
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reduce/chains.cpp" "src/reduce/CMakeFiles/brics_reduce.dir/chains.cpp.o" "gcc" "src/reduce/CMakeFiles/brics_reduce.dir/chains.cpp.o.d"
  "/root/repo/src/reduce/identical.cpp" "src/reduce/CMakeFiles/brics_reduce.dir/identical.cpp.o" "gcc" "src/reduce/CMakeFiles/brics_reduce.dir/identical.cpp.o.d"
  "/root/repo/src/reduce/ledger.cpp" "src/reduce/CMakeFiles/brics_reduce.dir/ledger.cpp.o" "gcc" "src/reduce/CMakeFiles/brics_reduce.dir/ledger.cpp.o.d"
  "/root/repo/src/reduce/reducer.cpp" "src/reduce/CMakeFiles/brics_reduce.dir/reducer.cpp.o" "gcc" "src/reduce/CMakeFiles/brics_reduce.dir/reducer.cpp.o.d"
  "/root/repo/src/reduce/redundant.cpp" "src/reduce/CMakeFiles/brics_reduce.dir/redundant.cpp.o" "gcc" "src/reduce/CMakeFiles/brics_reduce.dir/redundant.cpp.o.d"
  "/root/repo/src/reduce/serialize.cpp" "src/reduce/CMakeFiles/brics_reduce.dir/serialize.cpp.o" "gcc" "src/reduce/CMakeFiles/brics_reduce.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/brics_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/brics_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
