# Empty dependencies file for brics_traverse.
# This may be replaced when dependencies are built.
