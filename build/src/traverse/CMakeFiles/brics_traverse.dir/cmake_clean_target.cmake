file(REMOVE_RECURSE
  "libbrics_traverse.a"
)
