file(REMOVE_RECURSE
  "CMakeFiles/brics_traverse.dir/bfs.cpp.o"
  "CMakeFiles/brics_traverse.dir/bfs.cpp.o.d"
  "CMakeFiles/brics_traverse.dir/bidirectional.cpp.o"
  "CMakeFiles/brics_traverse.dir/bidirectional.cpp.o.d"
  "libbrics_traverse.a"
  "libbrics_traverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_traverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
