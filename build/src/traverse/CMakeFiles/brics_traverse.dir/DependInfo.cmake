
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traverse/bfs.cpp" "src/traverse/CMakeFiles/brics_traverse.dir/bfs.cpp.o" "gcc" "src/traverse/CMakeFiles/brics_traverse.dir/bfs.cpp.o.d"
  "/root/repo/src/traverse/bidirectional.cpp" "src/traverse/CMakeFiles/brics_traverse.dir/bidirectional.cpp.o" "gcc" "src/traverse/CMakeFiles/brics_traverse.dir/bidirectional.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/brics_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/brics_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
