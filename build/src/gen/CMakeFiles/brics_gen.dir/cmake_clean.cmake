file(REMOVE_RECURSE
  "CMakeFiles/brics_gen.dir/dataset.cpp.o"
  "CMakeFiles/brics_gen.dir/dataset.cpp.o.d"
  "CMakeFiles/brics_gen.dir/generators.cpp.o"
  "CMakeFiles/brics_gen.dir/generators.cpp.o.d"
  "libbrics_gen.a"
  "libbrics_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brics_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
