# Empty dependencies file for brics_gen.
# This may be replaced when dependencies are built.
