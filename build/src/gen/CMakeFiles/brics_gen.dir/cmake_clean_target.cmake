file(REMOVE_RECURSE
  "libbrics_gen.a"
)
