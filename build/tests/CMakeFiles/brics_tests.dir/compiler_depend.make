# Empty compiler generated dependencies file for brics_tests.
# This may be replaced when dependencies are built.
