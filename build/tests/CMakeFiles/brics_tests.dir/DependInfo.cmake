
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/brics_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_bcc.cpp" "tests/CMakeFiles/brics_tests.dir/test_bcc.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_bcc.cpp.o.d"
  "/root/repo/tests/test_bfs.cpp" "tests/CMakeFiles/brics_tests.dir/test_bfs.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_bfs.cpp.o.d"
  "/root/repo/tests/test_bidirectional.cpp" "tests/CMakeFiles/brics_tests.dir/test_bidirectional.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_bidirectional.cpp.o.d"
  "/root/repo/tests/test_chains.cpp" "tests/CMakeFiles/brics_tests.dir/test_chains.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_chains.cpp.o.d"
  "/root/repo/tests/test_confidence.cpp" "tests/CMakeFiles/brics_tests.dir/test_confidence.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_confidence.cpp.o.d"
  "/root/repo/tests/test_connectivity.cpp" "tests/CMakeFiles/brics_tests.dir/test_connectivity.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_connectivity.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/brics_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/brics_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_dynamic.cpp" "tests/CMakeFiles/brics_tests.dir/test_dynamic.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_dynamic.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/brics_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/brics_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_fuzz.cpp" "tests/CMakeFiles/brics_tests.dir/test_graph_fuzz.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_graph_fuzz.cpp.o.d"
  "/root/repo/tests/test_identical.cpp" "tests/CMakeFiles/brics_tests.dir/test_identical.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_identical.cpp.o.d"
  "/root/repo/tests/test_improve.cpp" "tests/CMakeFiles/brics_tests.dir/test_improve.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_improve.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/brics_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ledger.cpp" "tests/CMakeFiles/brics_tests.dir/test_ledger.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_ledger.cpp.o.d"
  "/root/repo/tests/test_metis_reorder.cpp" "tests/CMakeFiles/brics_tests.dir/test_metis_reorder.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_metis_reorder.cpp.o.d"
  "/root/repo/tests/test_paper_facts.cpp" "tests/CMakeFiles/brics_tests.dir/test_paper_facts.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_paper_facts.cpp.o.d"
  "/root/repo/tests/test_pivoting.cpp" "tests/CMakeFiles/brics_tests.dir/test_pivoting.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_pivoting.cpp.o.d"
  "/root/repo/tests/test_postprocess.cpp" "tests/CMakeFiles/brics_tests.dir/test_postprocess.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_postprocess.cpp.o.d"
  "/root/repo/tests/test_reduce_properties.cpp" "tests/CMakeFiles/brics_tests.dir/test_reduce_properties.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_reduce_properties.cpp.o.d"
  "/root/repo/tests/test_redundant.cpp" "tests/CMakeFiles/brics_tests.dir/test_redundant.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_redundant.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/brics_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/brics_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/brics_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strategy.cpp" "tests/CMakeFiles/brics_tests.dir/test_strategy.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_strategy.cpp.o.d"
  "/root/repo/tests/test_topk.cpp" "tests/CMakeFiles/brics_tests.dir/test_topk.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_topk.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/brics_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_weighted.cpp" "tests/CMakeFiles/brics_tests.dir/test_weighted.cpp.o" "gcc" "tests/CMakeFiles/brics_tests.dir/test_weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/brics_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/brics_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/brics_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/brics_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/traverse/CMakeFiles/brics_traverse.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/brics_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/bcc/CMakeFiles/brics_bcc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/brics_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/brics_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
