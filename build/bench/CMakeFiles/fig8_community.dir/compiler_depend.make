# Empty compiler generated dependencies file for fig8_community.
# This may be replaced when dependencies are built.
