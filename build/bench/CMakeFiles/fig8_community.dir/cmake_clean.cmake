file(REMOVE_RECURSE
  "CMakeFiles/fig8_community.dir/fig_classes.cpp.o"
  "CMakeFiles/fig8_community.dir/fig_classes.cpp.o.d"
  "fig8_community"
  "fig8_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
