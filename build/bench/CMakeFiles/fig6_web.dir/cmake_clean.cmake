file(REMOVE_RECURSE
  "CMakeFiles/fig6_web.dir/fig_classes.cpp.o"
  "CMakeFiles/fig6_web.dir/fig_classes.cpp.o.d"
  "fig6_web"
  "fig6_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
