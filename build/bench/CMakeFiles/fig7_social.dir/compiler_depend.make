# Empty compiler generated dependencies file for fig7_social.
# This may be replaced when dependencies are built.
