file(REMOVE_RECURSE
  "CMakeFiles/fig7_social.dir/fig_classes.cpp.o"
  "CMakeFiles/fig7_social.dir/fig_classes.cpp.o.d"
  "fig7_social"
  "fig7_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
