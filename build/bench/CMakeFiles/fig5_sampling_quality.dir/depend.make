# Empty dependencies file for fig5_sampling_quality.
# This may be replaced when dependencies are built.
