# Empty compiler generated dependencies file for fig9_road.
# This may be replaced when dependencies are built.
