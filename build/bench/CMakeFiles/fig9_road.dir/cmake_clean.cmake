file(REMOVE_RECURSE
  "CMakeFiles/fig9_road.dir/fig_classes.cpp.o"
  "CMakeFiles/fig9_road.dir/fig_classes.cpp.o.d"
  "fig9_road"
  "fig9_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
