
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_classes.cpp" "bench/CMakeFiles/fig9_road.dir/fig_classes.cpp.o" "gcc" "bench/CMakeFiles/fig9_road.dir/fig_classes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/brics_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/brics_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/brics_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traverse/CMakeFiles/brics_traverse.dir/DependInfo.cmake"
  "/root/repo/build/src/reduce/CMakeFiles/brics_reduce.dir/DependInfo.cmake"
  "/root/repo/build/src/bcc/CMakeFiles/brics_bcc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/brics_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/brics_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
