file(REMOVE_RECURSE
  "CMakeFiles/road_facility.dir/road_facility.cpp.o"
  "CMakeFiles/road_facility.dir/road_facility.cpp.o.d"
  "road_facility"
  "road_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
