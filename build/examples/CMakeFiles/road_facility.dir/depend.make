# Empty dependencies file for road_facility.
# This may be replaced when dependencies are built.
