file(REMOVE_RECURSE
  "CMakeFiles/social_influencers.dir/social_influencers.cpp.o"
  "CMakeFiles/social_influencers.dir/social_influencers.cpp.o.d"
  "social_influencers"
  "social_influencers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_influencers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
