# Empty dependencies file for social_influencers.
# This may be replaced when dependencies are built.
