file(REMOVE_RECURSE
  "CMakeFiles/network_design.dir/network_design.cpp.o"
  "CMakeFiles/network_design.dir/network_design.cpp.o.d"
  "network_design"
  "network_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
